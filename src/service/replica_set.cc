#include "service/replica_set.h"

#include <algorithm>
#include <condition_variable>
#include <utility>

#include "common/failpoint.h"

namespace ppgnn {
namespace {

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

/// Shared between Call() and its leg threads so a loser leg can outlive
/// the call (parked as a straggler) without dangling references.
struct LegSlot {
  int replica = -1;
  bool done = false;
  ClientCallOutcome out;
};

struct CallState {
  std::mutex mu;
  std::condition_variable cv;
  LegSlot primary;
  LegSlot hedge;
};

}  // namespace

ReplicaSet::ReplicaSet(int shard_index, std::vector<Poi> slice,
                       ReplicaSetConfig config)
    : shard_index_(shard_index),
      config_(std::move(config)),
      counters_(static_cast<size_t>(std::max(config_.replicas, 1))) {
  const int replicas = std::max(config_.replicas, 1);
  health_ = std::make_unique<HealthMonitor>(replicas, config_.health);
  failpoints_.reserve(static_cast<size_t>(replicas));
  dbs_.reserve(static_cast<size_t>(replicas));
  services_.reserve(static_cast<size_t>(replicas));
  links_.reserve(static_cast<size_t>(replicas));
  for (int r = 0; r < replicas; ++r) {
    failpoints_.push_back("shard.replica." + std::to_string(shard_index_) +
                          "." + std::to_string(r));
    RetryPolicy policy = config_.link_policy;
    // Replica 0's stream matches the PR 7 single-link layout (seed + j);
    // further replicas jump far enough that streams never collide.
    policy.seed += static_cast<uint64_t>(shard_index_) +
                   static_cast<uint64_t>(r) * 1000003ULL;
    if (config_.link_factory) {
      // Remote mode: the replica lives behind a caller-built link (a
      // TcpLink dialing its TcpShardServer). Down-edges from the link's
      // own exchanges demote the replica in the health monitor even when
      // no Call() is in flight — a severed socket is a health signal.
      remote_links_.push_back(config_.link_factory(shard_index_, r));
      remote_links_.back()->SetConnectivityObserver([this, r](bool up) {
        if (!up) health_->ReportFailure(r);
      });
      links_.push_back(
          std::make_unique<ResilientClient>(*remote_links_.back(), policy));
      continue;
    }
    // Each replica owns a full copy of the slice: replicas share no
    // state, so one replica's failure mode cannot leak into another.
    dbs_.push_back(std::make_unique<LspDatabase>(slice));
    services_.push_back(
        std::make_unique<LspService>(*dbs_.back(), config_.service));
    links_.push_back(
        std::make_unique<ResilientClient>(*services_.back(), policy));
  }
}

ReplicaSet::~ReplicaSet() { Shutdown(); }

void ReplicaSet::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(stragglers_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Stopping the services first unblocks any straggler leg still waiting
  // on a reply; only then is joining them bounded. Remote links are
  // Close()d for the same reason — and because Close joins the link's
  // worker threads, no connectivity observer can touch health_ after
  // this point.
  for (auto& service : services_) service->Shutdown();
  for (auto& link : remote_links_) link->Close();
  std::vector<std::thread> stragglers;
  {
    std::lock_guard<std::mutex> lock(stragglers_mu_);
    stragglers.swap(stragglers_);
  }
  for (std::thread& thread : stragglers) {
    if (thread.joinable()) thread.join();
  }
}

void ReplicaSet::ParkStraggler(std::thread thread) {
  if (!thread.joinable()) return;
  std::lock_guard<std::mutex> lock(stragglers_mu_);
  if (shut_down_) {
    // Shutdown already swept the list; the services are stopping, so the
    // leg resolves promptly and an inline join stays bounded.
    thread.join();
    return;
  }
  stragglers_.push_back(std::move(thread));
}

ClientCallOutcome ReplicaSet::CallLeg(int replica,
                                      const ServiceRequest& request,
                                      double remaining_seconds) {
  const Clock::time_point leg_start = Clock::now();
  ClientCallOutcome out;
  // The per-replica failpoint models this one replica being dead or slow;
  // an injected delay still falls through to the real call so slowness
  // (not just death) flows into the health EWMA and hedging.
  const Status injected =
      FailpointCheck(failpoints_[static_cast<size_t>(replica)].c_str());
  if (!injected.ok()) {
    out.error.code = WireErrorFromStatus(injected);
    out.error.detail = injected.ToString();
  } else {
    ServiceRequest leg = request;
    leg.deadline_seconds = remaining_seconds;
    out = links_[static_cast<size_t>(replica)]->Call(std::move(leg));
  }
  const double latency = Seconds(Clock::now() - leg_start);
  if (out.answered) {
    leg_latency_.Record(latency);
    health_->ReportSuccess(replica, latency);
  } else {
    counters_[static_cast<size_t>(replica)].leg_failures.fetch_add(
        1, std::memory_order_relaxed);
    // kMalformed is a verdict on *our* query, identical on every
    // replica — not a health signal.
    if (out.error.code != WireError::kMalformed) {
      health_->ReportFailure(replica);
    }
  }
  return out;
}

double ReplicaSet::HedgeDelaySeconds() const {
  if (config_.hedge_delay_seconds > 0) return config_.hedge_delay_seconds;
  if (leg_latency_.count() >= 8) {
    return std::max(config_.min_hedge_delay_seconds,
                    leg_latency_.Quantile(0.99));
  }
  return config_.fallback_hedge_delay_seconds;
}

ReplicaCallOutcome ReplicaSet::Call(const ServiceRequest& request,
                                    double budget_seconds) {
  const Clock::time_point start = Clock::now();
  const auto remaining = [&]() -> double {
    return budget_seconds - Seconds(Clock::now() - start);
  };
  const auto out_of_budget = [&]() {
    return budget_seconds > 0.0 && remaining() <= 0.0;
  };

  std::vector<int> order = health_->PreferenceOrder();
  bool probe_carried = false;
  if (order.empty()) {
    // Ladder tier 4: the whole set looks down. If any replica's
    // half-open gate admits, the real query doubles as the probe — the
    // fastest path from "down" back to "serving".
    for (int r = 0; r < replicas(); ++r) {
      if (health_->TryAdmitProbe(r)) {
        counters_[static_cast<size_t>(r)].probes.fetch_add(
            1, std::memory_order_relaxed);
        order.push_back(r);
        probe_carried = true;
        break;
      }
    }
  }

  ReplicaCallOutcome outcome;
  outcome.error.code = WireError::kOverloaded;
  outcome.error.detail = "replica set: no routable replica";
  if (order.empty()) return outcome;

  size_t next = 0;
  const int primary = order[next++];
  auto state = std::make_shared<CallState>();
  state->primary.replica = primary;
  const double primary_budget =
      budget_seconds > 0.0 ? std::max(remaining(), 0.001) : 0.0;
  std::thread primary_thread(
      [this, state, request, primary, primary_budget]() {
        ClientCallOutcome out = CallLeg(primary, request, primary_budget);
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->primary.out = std::move(out);
          state->primary.done = true;
        }
        state->cv.notify_all();
      });
  outcome.legs++;

  // Hedge: when the primary is silent past the p99-derived delay, race
  // one identical leg against the next-preferred replica. A probe-
  // carried call never hedges — half-open admits exactly one leg.
  bool hedged = false;
  if (config_.hedge && !probe_carried && next < order.size()) {
    double delay = HedgeDelaySeconds();
    if (budget_seconds > 0.0) delay = std::min(delay, std::max(remaining(), 0.0));
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait_for(lock, std::chrono::duration<double>(delay),
                       [&] { return state->primary.done; });
    hedged = !state->primary.done;
  }
  std::thread hedge_thread;
  int hedge_replica = -1;
  if (hedged) {
    hedge_replica = order[next++];
    state->hedge.replica = hedge_replica;
    hedges_launched_.fetch_add(1, std::memory_order_relaxed);
    const double hedge_budget =
        budget_seconds > 0.0 ? std::max(remaining(), 0.001) : 0.0;
    hedge_thread = std::thread(
        [this, state, request, hedge_replica, hedge_budget]() {
          ClientCallOutcome out = CallLeg(hedge_replica, request, hedge_budget);
          {
            std::lock_guard<std::mutex> lock(state->mu);
            state->hedge.out = std::move(out);
            state->hedge.done = true;
          }
          state->cv.notify_all();
        });
    outcome.legs++;
  }

  // First decisive answer wins; identical slices + a deterministic wire
  // make the winning frame byte-identical no matter which leg it is.
  int winner = -1;
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->cv.wait(lock, [&] {
      if (state->primary.done && state->primary.out.answered) return true;
      if (hedged && state->hedge.done && state->hedge.out.answered)
        return true;
      return state->primary.done && (!hedged || state->hedge.done);
    });
    if (state->primary.done && state->primary.out.answered) {
      winner = primary;
      outcome.frame = state->primary.out.frame;
    } else if (hedged && state->hedge.done && state->hedge.out.answered) {
      winner = hedge_replica;
      outcome.frame = state->hedge.out.frame;
      if (state->primary.done) {
        // The primary had already failed: the hedge acted as failover.
        outcome.failed_over = true;
      } else {
        outcome.hedge_won = true;
      }
    } else {
      outcome.error = state->primary.out.error;
      if (hedged && state->hedge.out.error.code != WireError::kMalformed &&
          state->primary.out.error.code == WireError::kMalformed) {
        outcome.error = state->hedge.out.error;
      }
    }
  }
  if (winner == primary && primary_thread.joinable()) primary_thread.join();
  if (winner >= 0) {
    if (winner == primary) {
      ParkStraggler(std::move(hedge_thread));
    } else {
      if (hedge_thread.joinable()) hedge_thread.join();
      ParkStraggler(std::move(primary_thread));
    }
    outcome.answered = true;
    outcome.served_by = winner;
    LegCounters& c = counters_[static_cast<size_t>(winner)];
    c.served.fetch_add(1, std::memory_order_relaxed);
    if (outcome.failed_over)
      c.failed_over.fetch_add(1, std::memory_order_relaxed);
    if (outcome.hedge_won) c.hedge_won.fetch_add(1, std::memory_order_relaxed);
    return outcome;
  }
  // Both first-wave legs are done and unanswered.
  if (primary_thread.joinable()) primary_thread.join();
  if (hedge_thread.joinable()) hedge_thread.join();

  // Terminal verdicts are identical on every replica: failing over a
  // malformed query only repeats the rejection.
  if (outcome.error.code == WireError::kMalformed) return outcome;

  // Ladder tier 3: sequential failover across the remaining routable
  // replicas while the budget lasts.
  for (; next < order.size(); ++next) {
    if (out_of_budget()) {
      outcome.error.code = WireError::kDeadlineExceeded;
      outcome.error.detail = "replica set: budget exhausted during failover";
      break;
    }
    const int r = order[next];
    ClientCallOutcome out =
        CallLeg(r, request, budget_seconds > 0.0 ? remaining() : 0.0);
    outcome.legs++;
    if (out.answered) {
      outcome.answered = true;
      outcome.served_by = r;
      outcome.failed_over = true;
      outcome.frame = std::move(out.frame);
      LegCounters& c = counters_[static_cast<size_t>(r)];
      c.served.fetch_add(1, std::memory_order_relaxed);
      c.failed_over.fetch_add(1, std::memory_order_relaxed);
      return outcome;
    }
    outcome.error = out.error;
    if (outcome.error.code == WireError::kMalformed) break;
  }
  return outcome;
}

void ReplicaSet::ProbeOnce() {
  for (int r = 0; r < replicas(); ++r) {
    const ReplicaHealth state = health_->state(r);
    if (state == ReplicaHealth::kProbing) continue;  // probe in flight
    if (state == ReplicaHealth::kDown && !health_->TryAdmitProbe(r)) {
      continue;  // cooldown still running
    }
    counters_[static_cast<size_t>(r)].probes.fetch_add(
        1, std::memory_order_relaxed);
    const Clock::time_point start = Clock::now();
    Status status = FailpointCheck(failpoints_[static_cast<size_t>(r)].c_str());
    // Remote replicas get a real reachability check: the link reuses a
    // pooled connection or dials. In-process replicas have no transport
    // to probe — the failpoint verdict is the whole check.
    if (status.ok() && !remote_links_.empty()) {
      status = remote_links_[static_cast<size_t>(r)]->Probe(
          config_.probe_timeout_seconds);
    }
    const double latency = Seconds(Clock::now() - start);
    if (status.ok()) {
      health_->ReportSuccess(r, latency);
    } else {
      health_->ReportFailure(r);
    }
  }
}

ReplicaSetStats ReplicaSet::Stats() const {
  ReplicaSetStats stats;
  stats.replicas.resize(counters_.size());
  for (size_t r = 0; r < counters_.size(); ++r) {
    ReplicaSetStats::Replica& out = stats.replicas[r];
    const LegCounters& c = counters_[r];
    out.health = health_->state(static_cast<int>(r));
    out.served = c.served.load(std::memory_order_relaxed);
    out.failed_over = c.failed_over.load(std::memory_order_relaxed);
    out.hedge_won = c.hedge_won.load(std::memory_order_relaxed);
    out.leg_failures = c.leg_failures.load(std::memory_order_relaxed);
    out.probes = c.probes.load(std::memory_order_relaxed);
    out.transitions = health_->transitions(static_cast<int>(r));
    out.ewma_latency_seconds =
        health_->ewma_latency_seconds(static_cast<int>(r));
  }
  stats.hedges_launched = hedges_launched_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ppgnn
