// ReplicaSet: R independent LspService instances over identical slice
// data, fronted by a HealthMonitor — one shard of the replicated
// cluster.
//
// Each replica holds its *own* LspDatabase copy of the same POI slice
// and is reached through its own ResilientClient link (per-leg retries,
// backoff, budget classification — seeds perturbed per replica so
// jitter streams stay independent). Because the slice data is identical
// and the shard wire is deterministic, every replica computes the same
// ShardAnswer bytes for the same query; Call() may therefore fail over
// or hedge freely without changing a single answer bit.
//
// Call() walks the resilience ladder:
//   1. the health monitor's preference order picks the primary (lowest
//      routable replica index — stable under flapping, see health.h);
//   2. a hedge leg to the next-preferred replica launches if the
//      primary is silent past a p99-derived delay; the first decisive
//      answer wins;
//   3. failed legs fail over to the remaining routable replicas while
//      the budget lasts;
//   4. when *no* replica is routable, one half-open probe may carry the
//      real query (a down set's fastest path back to serving);
//   5. only when all of that fails does the caller see an unanswered
//      outcome — the coordinator's degraded merge, the ladder's last
//      tier.
//
// Every probe and query leg evaluates the
// `shard.replica.<shard>.<replica>` failpoint, so chaos schedules can
// kill or slow any single replica; leg outcomes feed the health state
// machine.

#ifndef PPGNN_SERVICE_REPLICA_SET_H_
#define PPGNN_SERVICE_REPLICA_SET_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/latency.h"
#include "service/health.h"
#include "service/lsp_service.h"
#include "service/resilient_client.h"

namespace ppgnn {

struct ReplicaSetConfig {
  /// Independent replicas of the slice (>= 1).
  int replicas = 1;
  /// Per-replica LspService config (plaintext shard kGNN — keep modest).
  ServiceConfig service;
  /// Per-leg retry/budget policy; seed perturbed per (shard, replica).
  RetryPolicy link_policy;
  HealthConfig health;
  /// Cross-replica hedging: launch a second leg when the primary is
  /// silent past the delay. Requires replicas >= 2 to do anything.
  bool hedge = true;
  /// Fixed hedge delay; 0 = derive from this set's observed leg p99.
  double hedge_delay_seconds = 0.0;
  double min_hedge_delay_seconds = 0.001;
  double fallback_hedge_delay_seconds = 0.05;
  /// Remote mode: when set, the factory builds the ServiceLink for
  /// (shard, replica) — e.g. a TcpLink dialing a TcpShardServer — and
  /// the set builds *no* local databases or services; `service` is
  /// ignored. The ladder is otherwise identical: each remote link is
  /// still wrapped in a ResilientClient, and the link's connectivity
  /// observer feeds down-edges into the health monitor so a severed
  /// socket demotes the replica even between queries.
  std::function<std::unique_ptr<ServiceLink>(int shard, int replica)>
      link_factory;
  /// ProbeOnce dial budget per remote replica (remote mode only).
  double probe_timeout_seconds = 0.25;
};

/// What one replicated call did, for the coordinator's ladder counters.
struct ReplicaCallOutcome {
  bool answered = false;
  std::vector<uint8_t> frame;  ///< winning ResponseFrame bytes
  ErrorMessage error;          ///< set when !answered
  int served_by = -1;          ///< replica index that produced `frame`
  bool failed_over = false;    ///< a non-primary leg answered after failures
  bool hedge_won = false;      ///< the hedge leg's answer was used
  int legs = 0;                ///< query legs launched (primary + hedge + failover)
};

/// Per-replica ladder counters, snapshotted into ServiceStats.
struct ReplicaSetStats {
  struct Replica {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    uint64_t served = 0;        ///< legs whose answer won a call
    uint64_t failed_over = 0;   ///< wins that were failover legs
    uint64_t hedge_won = 0;     ///< wins that were hedge legs
    uint64_t leg_failures = 0;  ///< legs that ended unanswered
    uint64_t probes = 0;        ///< health probes run against this replica
    uint64_t transitions = 0;   ///< health-state transitions
    double ewma_latency_seconds = 0.0;
  };
  std::vector<Replica> replicas;
  uint64_t hedges_launched = 0;
};

class ReplicaSet {
 public:
  /// Builds R databases/services/links over copies of `slice`.
  ReplicaSet(int shard_index, std::vector<Poi> slice, ReplicaSetConfig config);
  ~ReplicaSet();

  ReplicaSet(const ReplicaSet&) = delete;
  ReplicaSet& operator=(const ReplicaSet&) = delete;

  /// Runs one shard query to a decisive outcome under the ladder.
  /// `budget_seconds` <= 0 means no wall-clock bound (legs still obey
  /// the link policy). Thread-safe.
  ReplicaCallOutcome Call(const ServiceRequest& request,
                          double budget_seconds);

  /// One probe pass: healthy/suspect replicas are probed directly; a
  /// down replica is probed only if its half-open gate admits. Called
  /// by the coordinator's background prober and by tests.
  void ProbeOnce();

  ReplicaSetStats Stats() const;
  HealthMonitor& health() { return *health_; }
  int replicas() const { return static_cast<int>(links_.size()); }
  /// True when the set reaches its replicas over caller-built links
  /// (link_factory) instead of in-process services.
  bool remote() const { return !remote_links_.empty(); }
  /// In-process mode only — remote replicas live behind their links.
  LspService& replica_service(int replica) {
    return *services_[static_cast<size_t>(replica)];
  }
  const ResilientClient& link(int replica) const {
    return *links_[static_cast<size_t>(replica)];
  }

  /// Stops the replica services (draining in-flight legs) and joins any
  /// straggler hedge/failover threads. Idempotent.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  // ppgnn: stat_counter(served, failed_over, hedge_won, leg_failures)
  // ppgnn: stat_counter(probes, hedges_launched_)
  struct LegCounters {
    std::atomic<uint64_t> served{0};
    std::atomic<uint64_t> failed_over{0};
    std::atomic<uint64_t> hedge_won{0};
    std::atomic<uint64_t> leg_failures{0};
    std::atomic<uint64_t> probes{0};
  };

  /// One query leg: failpoint gate, link call, health report.
  ClientCallOutcome CallLeg(int replica, const ServiceRequest& request,
                            double remaining_seconds);
  double HedgeDelaySeconds() const;
  /// Moves a still-running loser leg's thread to the straggler list (and
  /// reaps finished stragglers) so Call() can return without waiting on
  /// a slow leg.
  void ParkStraggler(std::thread thread);

  const int shard_index_;
  const ReplicaSetConfig config_;
  std::vector<std::string> failpoints_;  ///< shard.replica.<s>.<r>
  std::vector<std::unique_ptr<LspDatabase>> dbs_;
  std::vector<std::unique_ptr<LspService>> services_;
  /// Remote mode: the factory-built links the ResilientClients wrap.
  /// Closed in Shutdown *before* health_ could die under an observer.
  std::vector<std::unique_ptr<ServiceLink>> remote_links_;
  std::vector<std::unique_ptr<ResilientClient>> links_;
  std::unique_ptr<HealthMonitor> health_;
  std::vector<LegCounters> counters_;
  std::atomic<uint64_t> hedges_launched_{0};
  LatencyHistogram leg_latency_;

  mutable std::mutex stragglers_mu_;
  // ppgnn: guarded_by(stragglers_, stragglers_mu_)
  std::vector<std::thread> stragglers_;
  // ppgnn: guarded_by(shut_down_, stragglers_mu_)
  bool shut_down_ = false;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_REPLICA_SET_H_
