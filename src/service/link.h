// ServiceLink: the seam between the resilience ladder and whatever
// actually answers a request.
//
// ResilientClient (and through it ReplicaSet / the shard coordinator)
// only ever needs three things from its downstream: an asynchronous
// Submit that promises exactly one callback per request, and two
// bookkeeping hooks so client-side recovery activity lands in the same
// stats snapshot as the server counters it caused. LspService satisfies
// the interface in-process; TcpLink (src/net/transport) satisfies it
// over a real socket. Everything above the seam — budgets, hedging,
// failover, health, byte-identical answers — is transport-agnostic by
// construction.
//
// Contract for implementors:
//   * Submit is non-blocking admission. Returns true if the request was
//     taken (the callback will fire later, exactly once, possibly on
//     another thread); on false the callback has ALREADY been invoked
//     inline with a structured error frame. Either way: one request,
//     one callback.
//   * Every delivered buffer is either a decodable wire ResponseFrame
//     or transport garbage the caller's frame decode will classify —
//     a link never invents half-answers.
//   * Close() releases transport resources and unblocks any in-flight
//     Submit callbacks (with structured errors). Idempotent; in-process
//     implementations may no-op it and keep their own shutdown API.

#ifndef PPGNN_SERVICE_LINK_H_
#define PPGNN_SERVICE_LINK_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"

namespace ppgnn {

struct ServiceRequest;

class ServiceLink {
 public:
  /// Invoked exactly once per submitted request with the encoded
  /// ResponseFrame (or raw transport bytes on a garbled reply).
  using Callback = std::function<void(std::vector<uint8_t>)>;

  virtual ~ServiceLink() = default;

  /// Non-blocking admission; see the contract above.
  [[nodiscard]] virtual bool Submit(ServiceRequest request,
                                    Callback done) = 0;

  /// Resilience-event hooks: a retrying/hedging client reports its
  /// recovery activity through the link so it shows up next to the
  /// server-side counters it caused. Default: not tracked.
  virtual void RecordClientRetry() {}
  virtual void RecordClientHedge() {}

  /// Registers a connectivity observer: called with false when the link
  /// loses its transport (dial failure, peer reset, I/O timeout) and
  /// true when it re-establishes one. Edge-triggered — implementations
  /// report state *changes*, not every outcome. The owner (ReplicaSet)
  /// feeds the false edges into HealthMonitor so a dead socket demotes
  /// the replica without waiting for a full call to fail. Links with no
  /// transport state (in-process) ignore this.
  virtual void SetConnectivityObserver(
      std::function<void(bool /*up*/)> /*observer*/) {}

  /// Cheap reachability check for the half-open prober: an in-process
  /// link is always reachable (OK); a transport link verifies it can
  /// reach the peer (e.g. reusing or dialing a connection) within the
  /// timeout. Never carries a query.
  virtual Status Probe(double /*timeout_seconds*/) { return Status::OK(); }

  /// Releases transport resources; see the contract above.
  virtual void Close() {}
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_LINK_H_
