// ShardedLspService: a scatter-gather cluster of replicated LSP shards
// behind the standard LspService front-end.
//
// The POI space is split into S contiguous slices (sorted by (x, y, id)
// and cut into equal runs, so shard MBRs overlap only at slice
// boundaries); each slice backs a *replica set* of R independent
// LspService instances over identical copies of the slice data
// (service/replica_set.h), fronted by a health monitor
// (service/health.h). The front-end is a plain LspService whose
// execution handler, instead of running the kGNN locally, for every
// candidate query:
//
//   * routes it to the shards whose MBR could contribute to the global
//     top-k (MBM-style bound: any shard holding >= k POIs caps the k-th
//     cost at its aggregate max-distance; shards whose aggregate
//     min-distance exceeds the tightest such cap are pruned — exactly,
//     since every POI they hold is then strictly worse than the cap);
//   * scatters per-shard ShardQueryMessages, each through its replica
//     set's resilience ladder: health-ordered replica preference,
//     budget-bounded failover, p99-derived cross-replica hedging, and
//     a half-open probe when the whole set looks down — all carrying
//     the request's remaining deadline and a per-shard-derived
//     idempotency key in the wire-v2 trailer;
//   * gathers the per-shard top-k lists and merges them per candidate by
//     (cost, poi id) — the same total order the single-node MBM solver
//     emits, so an S=1 cluster is bit-identical to a plain LspService.
//     Because replicas hold identical data and the shard wire is
//     deterministic, a failover or hedge-win changes *zero* answer
//     bits: the merged frame is byte-identical to the no-failure run.
//
// Crypto never leaves the coordinator: sanitation (seeded by
// LspSanitizeSeed, identical to the single-node path), answer packing,
// and private selection all run over the *merged* matrix, so the
// encrypted answer shape (Privacy II) cannot reveal the shard layout —
// or which replica served (the Hashem et al. invariant).
//
// Degraded merges are the resilience ladder's *last* tier: only when
// every replica in a routed set is unavailable (the set-wide
// shard.link.<j> failpoint, or every shard.replica.<j>.<r> leg dead) is
// the slice missing from the merge; the fan-out is then counted in
// ServiceStats::degraded_shards. Fan-outs that needed the ladder but
// still merged every routed shard count as exact_despite_failures.
// Only when *every* routed shard fails does the query error (kInternal).

#ifndef PPGNN_SERVICE_SHARD_COORDINATOR_H_
#define PPGNN_SERVICE_SHARD_COORDINATOR_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "geo/rect.h"
#include "service/health.h"
#include "service/lsp_service.h"
#include "service/replica_set.h"
#include "service/resilient_client.h"

namespace ppgnn {

struct ShardClusterConfig {
  /// Number of POI shards (>= 1). 1 is a degenerate cluster whose answers
  /// are bit-identical to a plain LspService over the same POIs.
  int shards = 1;
  /// Replication factor per shard (>= 1). 1 reproduces the PR 7 layout:
  /// one link per slice, a dead link degrades the merge.
  int replicas = 1;
  /// The coordinator front-end (admission, queue, deadlines, dedup). Its
  /// sanitize/test_config/lsp_threads govern the merged-answer pipeline.
  ServiceConfig front;
  /// Per-replica service config (plaintext kGNN only — keep workers
  /// modest).
  ServiceConfig shard;
  /// Retry/hedge/budget policy for each coordinator -> replica link. The
  /// seed is perturbed per (shard, replica) so link jitter streams are
  /// independent.
  RetryPolicy link_policy;
  /// Replica health state machine (thresholds, cooldown, probe cadence,
  /// injectable clock).
  HealthConfig health;
  /// Cross-replica hedging inside each set (needs replicas >= 2).
  bool hedge = true;
  /// Fixed cross-replica hedge delay; 0 = derive from observed leg p99.
  double hedge_delay_seconds = 0.0;
  /// Run the background prober thread (health.probe_interval_seconds
  /// cadence). Off by default so deterministic tests drive probes
  /// manually; the CLI and benches turn it on.
  bool background_prober = false;
  /// Remote transport mode: when set, every (shard, replica) link comes
  /// from this factory (e.g. net/transport TcpLinks dialing a
  /// LoopbackShardFleet or --listen processes) and no local shard
  /// databases/services are built; `shard` is ignored. POIs are still
  /// partitioned locally — the coordinator needs the slice MBRs and
  /// sizes for exact routing, and remote servers MUST hold the same
  /// (x, y, id)-sorted slices for answers to stay byte-identical.
  std::function<std::unique_ptr<ServiceLink>(int shard, int replica)>
      link_factory;
  /// ProbeOnce dial budget per remote replica (remote mode only).
  double probe_timeout_seconds = 0.25;
};

/// Splits `pois` into `shards` contiguous slices of near-equal size,
/// sorted by (x, y, id). Every POI lands in exactly one slice; slices are
/// returned in x order and may be empty only when shards > |pois|.
std::vector<std::vector<Poi>> PartitionPoisForShards(std::vector<Poi> pois,
                                                     int shards);

class ShardedLspService {
 public:
  /// Builds the replica sets and starts the front-end (and the prober,
  /// when configured).
  ShardedLspService(std::vector<Poi> pois, ShardClusterConfig config);
  ~ShardedLspService();

  ShardedLspService(const ShardedLspService&) = delete;
  ShardedLspService& operator=(const ShardedLspService&) = delete;

  /// Same contract as LspService::Submit / Call, on the front-end.
  [[nodiscard]] bool Submit(ServiceRequest request, LspService::Callback done);
  std::vector<uint8_t> Call(ServiceRequest request);

  /// Front-end stats with the resilience ladder filled in from the
  /// gather path: degraded_shards, exact_despite_failures, failover /
  /// hedge-win counts, health transitions, and per-replica rows.
  ServiceStats Stats() const;

  /// Stops the prober and the front-end first (drains coordinator
  /// queries, which still need the shards), then the replica sets.
  /// Idempotent.
  void Shutdown();

  int shards() const { return static_cast<int>(sets_.size()); }
  int replicas() const { return config_.replicas; }
  const Rect& shard_mbr(int shard) const {
    return shard_mbrs_[static_cast<size_t>(shard)];
  }
  size_t shard_size(int shard) const {
    return shard_sizes_[static_cast<size_t>(shard)];
  }
  /// Test/bench access to the layers.
  LspService& front() { return *front_; }
  ReplicaSet& replica_set(int shard) {
    return *sets_[static_cast<size_t>(shard)];
  }
  /// Replica 0 of the shard — the PR 7 single-replica accessors.
  LspService& shard_service(int shard) {
    return sets_[static_cast<size_t>(shard)]->replica_service(0);
  }
  const ResilientClient& link(int shard) const {
    return sets_[static_cast<size_t>(shard)]->link(0);
  }

 private:
  /// The front-end execution handler: decode, candidate expansion,
  /// route/scatter/gather/merge, sanitize, pack, private selection.
  Result<std::vector<uint8_t>> HandleQuery(const ServiceRequest& request,
                                           const LspService::HandlerContext& ctx);
  void ProberLoop();

  ShardClusterConfig config_;
  std::vector<std::unique_ptr<ReplicaSet>> sets_;
  std::vector<Rect> shard_mbrs_;
  std::vector<size_t> shard_sizes_;
  // ppgnn: stat_counter(degraded_shards_, exact_despite_failures_)
  // ppgnn: stat_counter(replica_failovers_, replica_hedge_wins_)
  std::atomic<uint64_t> degraded_shards_{0};
  std::atomic<uint64_t> exact_despite_failures_{0};
  std::atomic<uint64_t> replica_failovers_{0};
  std::atomic<uint64_t> replica_hedge_wins_{0};

  std::mutex prober_mu_;
  std::condition_variable prober_cv_;
  // ppgnn: guarded_by(prober_stop_, prober_mu_)
  bool prober_stop_ = false;
  std::thread prober_;

  /// Declared last: destroyed (and shut down) first, while the replica
  /// sets its in-flight handlers scatter to are still alive.
  std::unique_ptr<LspService> front_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_SHARD_COORDINATOR_H_
