// ShardedLspService: a scatter-gather cluster of LSP shards behind the
// standard LspService front-end.
//
// The POI space is split into S contiguous slices (sorted by (x, y, id)
// and cut into equal runs, so shard MBRs overlap only at slice
// boundaries); each slice gets its own LspDatabase + LspService. The
// front-end is a plain LspService whose execution handler, instead of
// running the kGNN locally, for every candidate query:
//
//   * routes it to the shards whose MBR could contribute to the global
//     top-k (MBM-style bound: any shard holding >= k POIs caps the k-th
//     cost at its aggregate max-distance; shards whose aggregate
//     min-distance exceeds the tightest such cap are pruned — exactly,
//     since every POI they hold is then strictly worse than the cap);
//   * scatters per-shard ShardQueryMessages over one ResilientClient per
//     shard link (retries/hedging/deadline budgeting per leg), carrying
//     the request's remaining deadline and a per-shard-derived
//     idempotency key in the wire-v2 trailer;
//   * gathers the per-shard top-k lists and merges them per candidate by
//     (cost, poi id) — the same total order the single-node MBM solver
//     emits, so an S=1 cluster is bit-identical to a plain LspService.
//
// Crypto never leaves the coordinator: sanitation (seeded by
// LspSanitizeSeed, identical to the single-node path), answer packing,
// and private selection all run over the *merged* matrix, so the
// encrypted answer shape (Privacy II) cannot reveal the shard layout.
//
// Degraded merges: a shard that is down or too slow (its link exhausts
// retries within the remaining budget, or the shard.link.<j> failpoint
// injects a failure) is simply missing from the merge. The query still
// completes — possibly with fewer than k POIs for candidates that
// depended on the dead shard — and the fan-out is counted in
// ServiceStats::degraded_shards. Only when *every* routed shard fails
// does the query error (kInternal).

#ifndef PPGNN_SERVICE_SHARD_COORDINATOR_H_
#define PPGNN_SERVICE_SHARD_COORDINATOR_H_

#include <atomic>
#include <memory>
#include <vector>

#include "geo/rect.h"
#include "service/lsp_service.h"
#include "service/resilient_client.h"

namespace ppgnn {

struct ShardClusterConfig {
  /// Number of POI shards (>= 1). 1 is a degenerate cluster whose answers
  /// are bit-identical to a plain LspService over the same POIs.
  int shards = 1;
  /// The coordinator front-end (admission, queue, deadlines, dedup). Its
  /// sanitize/test_config/lsp_threads govern the merged-answer pipeline.
  ServiceConfig front;
  /// Per-shard service config (plaintext kGNN only — keep workers modest).
  ServiceConfig shard;
  /// Retry/hedge/budget policy for each coordinator -> shard link. The
  /// seed is perturbed per shard so link jitter streams are independent.
  RetryPolicy link_policy;
};

/// Splits `pois` into `shards` contiguous slices of near-equal size,
/// sorted by (x, y, id). Every POI lands in exactly one slice; slices are
/// returned in x order and may be empty only when shards > |pois|.
std::vector<std::vector<Poi>> PartitionPoisForShards(std::vector<Poi> pois,
                                                     int shards);

class ShardedLspService {
 public:
  /// Builds the shard databases/services/links and starts the front-end.
  ShardedLspService(std::vector<Poi> pois, ShardClusterConfig config);
  ~ShardedLspService();

  ShardedLspService(const ShardedLspService&) = delete;
  ShardedLspService& operator=(const ShardedLspService&) = delete;

  /// Same contract as LspService::Submit / Call, on the front-end.
  [[nodiscard]] bool Submit(ServiceRequest request, LspService::Callback done);
  std::vector<uint8_t> Call(ServiceRequest request);

  /// Front-end stats with degraded_shards filled in from the gather path.
  ServiceStats Stats() const;

  /// Stops the front-end first (drains coordinator queries, which still
  /// need the shards), then the shards. Idempotent.
  void Shutdown();

  int shards() const { return static_cast<int>(shard_services_.size()); }
  const Rect& shard_mbr(int shard) const {
    return shard_mbrs_[static_cast<size_t>(shard)];
  }
  size_t shard_size(int shard) const {
    return shard_sizes_[static_cast<size_t>(shard)];
  }
  /// Test/bench access to the layers.
  LspService& front() { return *front_; }
  LspService& shard_service(int shard) {
    return *shard_services_[static_cast<size_t>(shard)];
  }
  const ResilientClient& link(int shard) const {
    return *links_[static_cast<size_t>(shard)];
  }

 private:
  /// The front-end execution handler: decode, candidate expansion,
  /// route/scatter/gather/merge, sanitize, pack, private selection.
  Result<std::vector<uint8_t>> HandleQuery(const ServiceRequest& request,
                                           const LspService::HandlerContext& ctx);

  ShardClusterConfig config_;
  std::vector<std::unique_ptr<LspDatabase>> shard_dbs_;
  std::vector<std::unique_ptr<LspService>> shard_services_;
  std::vector<std::unique_ptr<ResilientClient>> links_;
  std::vector<Rect> shard_mbrs_;
  std::vector<size_t> shard_sizes_;
  std::atomic<uint64_t> degraded_shards_{0};
  /// Declared last: destroyed (and shut down) first, while the shard
  /// services its in-flight handlers scatter to are still alive.
  std::unique_ptr<LspService> front_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_SHARD_COORDINATOR_H_
