#include "service/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <thread>

namespace ppgnn {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

Clock::duration FromSeconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Shared between Call() and the (possibly two) reply callbacks of one
/// attempt round. Held by shared_ptr so a hedge-loser's late callback
/// lands safely even after Call() has moved on or returned.
struct RoundState {
  std::mutex mu;
  std::condition_variable cv;
  struct Reply {
    std::vector<uint8_t> frame;
    bool from_hedge = false;
  };
  // ppgnn: guarded_by(replies, mu)
  std::vector<Reply> replies;
  // ppgnn: guarded_by(outstanding, mu)
  int outstanding = 0;
};

/// How one reply (or a whole round) resolves.
enum class Resolution {
  kAnswer,     ///< decodable answer frame: done
  kTerminal,   ///< structured error a retry cannot fix: done
  kRetryable,  ///< structured transient error or transport garbage
};

}  // namespace

std::string ClientStats::ToString() const {
  char buf[448];
  std::snprintf(
      buf, sizeof(buf),
      "calls=%llu attempts=%llu retries=%llu hedges=%llu hedge_wins=%llu "
      "answers=%llu terminal=%llu budget_exhausted=%llu garbage=%llu "
      "retry_after_honored=%llu breaker[opens=%llu fast_fails=%llu]",
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(attempts),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(hedge_wins),
      static_cast<unsigned long long>(answers),
      static_cast<unsigned long long>(terminal_errors),
      static_cast<unsigned long long>(budget_exhausted),
      static_cast<unsigned long long>(transport_garbage),
      static_cast<unsigned long long>(retry_after_honored),
      static_cast<unsigned long long>(breaker_opens),
      static_cast<unsigned long long>(breaker_fast_fails));
  return buf;
}

ResilientClient::ResilientClient(ServiceLink& service, RetryPolicy policy)
    // ppgnn-lint: allow(guarded-by): constructor has exclusive access
    : service_(service), policy_(std::move(policy)), rng_(policy_.seed) {}

bool ResilientClient::IsRetryable(WireError code) {
  // kShuttingDown is a clean pre-admission rejection: a resend (to a
  // replacement replica, or after the drain's retry_after_ms) can win.
  return code == WireError::kOverloaded ||
         code == WireError::kDeadlineExceeded ||
         code == WireError::kShuttingDown;
}

double ResilientClient::HedgeDelaySeconds() const {
  if (policy_.hedge_delay_seconds > 0) return policy_.hedge_delay_seconds;
  // Derive from this client's own attempt latencies once there is enough
  // history for a p99 to mean anything.
  if (attempt_latency_.count() >= 8) {
    return std::max(policy_.min_hedge_delay_seconds,
                    attempt_latency_.Quantile(0.99));
  }
  return policy_.fallback_hedge_delay_seconds;
}

double ResilientClient::BackoffSeconds(int completed_attempts) {
  double base = policy_.initial_backoff_seconds *
                std::pow(policy_.backoff_multiplier,
                         std::max(completed_attempts - 1, 0));
  base = std::min(base, policy_.max_backoff_seconds);
  double jitter = 0.0;
  if (policy_.jitter_fraction > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    jitter = policy_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  }
  return std::max(base * (1.0 + jitter), 0.0);
}

uint64_t ResilientClient::NextIdempotencyKey() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t key = 0;
  while (key == 0) key = rng_.NextUint64();  // 0 means "untagged" on the wire
  return key;
}

bool ResilientClient::BreakerAdmit(bool* is_probe) {
  *is_probe = false;
  if (policy_.breaker_threshold <= 0) return true;
  std::lock_guard<std::mutex> lock(mu_);
  if (!breaker_open_) return true;
  if (breaker_probe_in_flight_) return false;
  if (Clock::now() < breaker_open_until_) return false;
  // Half-open: exactly one probe goes through; everyone else keeps
  // fast-failing until its verdict.
  breaker_probe_in_flight_ = true;
  *is_probe = true;
  return true;
}

void ResilientClient::BreakerOnOutcome(bool success, bool was_probe) {
  if (policy_.breaker_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (was_probe) breaker_probe_in_flight_ = false;
  if (success) {
    breaker_consecutive_failures_ = 0;
    breaker_open_ = false;
    return;
  }
  if (breaker_open_) {
    // Only a failed probe re-arms the cooldown; a straggler reply from
    // before the breaker opened must not extend it.
    if (was_probe) {
      breaker_open_until_ =
          Clock::now() + FromSeconds(policy_.breaker_cooldown_seconds);
      stats_.breaker_opens++;
    }
    return;
  }
  if (++breaker_consecutive_failures_ >= policy_.breaker_threshold) {
    breaker_open_ = true;
    breaker_open_until_ =
        Clock::now() + FromSeconds(policy_.breaker_cooldown_seconds);
    stats_.breaker_opens++;
  }
}

void ResilientClient::BreakerReleaseProbe() {
  if (policy_.breaker_threshold <= 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  breaker_probe_in_flight_ = false;
}

ClientCallOutcome ResilientClient::Call(ServiceRequest request) {
  const Clock::time_point start = Clock::now();
  const Clock::time_point budget_deadline =
      policy_.total_budget_seconds > 0
          ? start + FromSeconds(policy_.total_budget_seconds)
          : Clock::time_point::max();

  ClientCallOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.calls++;
  }
  // One key per logical call: every retry and hedge below carries it, so
  // the server coalesces duplicates instead of re-running the pipeline.
  if (policy_.tag_idempotency && request.idempotency_key == 0) {
    request.idempotency_key = NextIdempotencyKey();
  }

  // The most recent structured (decodable) error frame, so a failed call
  // still hands the caller something a ResponseFrame::Decode understands.
  std::vector<uint8_t> last_error_frame;
  ErrorMessage last_error;
  bool saw_garbage = false;
  bool budget_hit = false;

  const int max_attempts = std::max(policy_.max_attempts, 1);
  while (outcome.attempts < max_attempts) {
    const Clock::time_point attempt_start = Clock::now();
    if (attempt_start >= budget_deadline) {
      budget_hit = true;
      break;
    }
    const double remaining =
        budget_deadline == Clock::time_point::max()
            ? 0.0  // unlimited: let the request carry its own deadline
            : Seconds(budget_deadline - attempt_start);

    uint64_t round_retry_after_ms = 0;
    bool round_is_probe = false;
    Resolution round_resolution = Resolution::kRetryable;

    if (!BreakerAdmit(&round_is_probe)) {
      // Open breaker: answer the attempt locally with a synthesized
      // overloaded frame — the whole point is to not touch the server.
      outcome.attempts++;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.attempts++;
        stats_.breaker_fast_fails++;
      }
      last_error = ErrorMessage{};
      last_error.code = WireError::kOverloaded;
      last_error.detail = "resilient client: circuit breaker open";
      last_error.retry_after_ms = static_cast<uint64_t>(
          std::max(policy_.breaker_cooldown_seconds, 0.001) * 1000.0);
      last_error_frame = ResponseFrame::WrapError(last_error);
      round_retry_after_ms = last_error.retry_after_ms;
    } else {
      auto state = std::make_shared<RoundState>();
      auto submit = [&](bool from_hedge) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          state->outstanding++;
        }
        ServiceRequest copy = request;
        if (remaining > 0 &&
            (copy.deadline_seconds <= 0 || copy.deadline_seconds > remaining)) {
          copy.deadline_seconds = remaining;
        }
        const Clock::time_point submitted = Clock::now();
        // Submit may run the callback inline (queue-full reject), so no
        // locks of ours are held here; a reject still surfaces through
        // the callback's error frame, so the bool is redundant.
        (void)service_.Submit(
            std::move(copy),
            [this, state, from_hedge, submitted](std::vector<uint8_t> frame) {
              attempt_latency_.Record(Seconds(Clock::now() - submitted));
              std::lock_guard<std::mutex> lock(state->mu);
              state->replies.push_back({std::move(frame), from_hedge});
              state->outstanding--;
              state->cv.notify_all();
            });
      };

      outcome.attempts++;
      {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.attempts++;
      }
      submit(/*from_hedge=*/false);

      const Clock::time_point hedge_at =
          policy_.hedge ? attempt_start + FromSeconds(HedgeDelaySeconds())
                        : Clock::time_point::max();
      bool hedged_this_round = false;
      bool round_decided = false;

      std::unique_lock<std::mutex> lock(state->mu);
      size_t consumed = 0;
      while (!round_decided) {
        // Evaluate any replies that arrived since the last look.
        for (; consumed < state->replies.size(); ++consumed) {
          RoundState::Reply& reply = state->replies[consumed];
          Result<ResponseFrame> decoded = ResponseFrame::Decode(reply.frame);
          if (!decoded.ok()) {
            // Transport garbage (e.g. an injected corrupt frame): the
            // reply is unusable but the failure class is transient.
            saw_garbage = true;
            std::lock_guard<std::mutex> slock(mu_);
            stats_.transport_garbage++;
            continue;
          }
          if (!decoded.value().is_error) {
            outcome.frame = std::move(reply.frame);
            outcome.answered = true;
            outcome.hedge_won = reply.from_hedge;
            BreakerOnOutcome(/*success=*/true, round_is_probe);
            round_is_probe = false;
            round_resolution = Resolution::kAnswer;
            round_decided = true;
            break;
          }
          last_error = decoded.value().error;
          last_error_frame = std::move(reply.frame);
          if (!IsRetryable(last_error.code)) {
            BreakerOnOutcome(/*success=*/false, round_is_probe);
            round_is_probe = false;
            round_resolution = Resolution::kTerminal;
            round_decided = true;
            break;
          }
          if (last_error.code == WireError::kOverloaded) {
            if (last_error.retry_after_ms > 0) {
              round_retry_after_ms = last_error.retry_after_ms;
            }
            BreakerOnOutcome(/*success=*/false, round_is_probe);
            round_is_probe = false;
          }
        }
        if (round_decided) break;
        // Nothing decisive yet. If nothing is outstanding either, the
        // round has failed retryably.
        if (state->outstanding == 0) break;
        const Clock::time_point now = Clock::now();
        if (now >= budget_deadline) {
          // Abandon the outstanding attempt: its late reply only touches
          // `state`, which outlives us via the shared_ptr in the
          // callback.
          budget_hit = true;
          round_decided = true;
          round_resolution = Resolution::kRetryable;
          break;
        }
        Clock::time_point wake = budget_deadline;
        const bool may_hedge =
            policy_.hedge && !hedged_this_round && state->replies.empty();
        if (may_hedge) wake = std::min(wake, hedge_at);
        if (wake == Clock::time_point::max()) {
          state->cv.wait(lock);
        } else {
          state->cv.wait_until(lock, wake);
        }
        if (may_hedge && Clock::now() >= hedge_at && state->replies.empty() &&
            state->outstanding > 0) {
          hedged_this_round = true;
          outcome.hedges++;
          {
            std::lock_guard<std::mutex> slock(mu_);
            stats_.hedges++;
          }
          service_.RecordClientHedge();
          lock.unlock();
          submit(/*from_hedge=*/true);
          lock.lock();
        }
      }
      lock.unlock();
    }
    // A probe round that ended without a decisive reply (garbage only,
    // or abandoned on budget) releases the probe slot so the breaker can
    // try again rather than fast-failing forever.
    if (round_is_probe) BreakerReleaseProbe();

    if (round_resolution == Resolution::kAnswer) {
      if (outcome.hedge_won) {
        std::lock_guard<std::mutex> slock(mu_);
        stats_.hedge_wins++;
      }
      break;
    }
    if (round_resolution == Resolution::kTerminal) break;
    if (budget_hit || outcome.attempts >= max_attempts) break;

    // Transient failure with budget and attempts to spare: back off. A
    // server retry_after_ms hint replaces the exponential schedule
    // (jitter still applies so hinted clients don't stampede in sync).
    double backoff = BackoffSeconds(outcome.attempts);
    if (policy_.honor_retry_after && round_retry_after_ms > 0) {
      double jitter = 0.0;
      if (policy_.jitter_fraction > 0) {
        std::lock_guard<std::mutex> slock(mu_);
        jitter = policy_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
      }
      backoff = std::max(
          static_cast<double>(round_retry_after_ms) / 1000.0 * (1.0 + jitter),
          0.0);
      std::lock_guard<std::mutex> slock(mu_);
      stats_.retry_after_honored++;
    }
    // Capped against the remaining budget: never sleep past the point
    // where no further attempt could run.
    if (budget_deadline != Clock::time_point::max() &&
        Clock::now() + FromSeconds(backoff) >= budget_deadline) {
      budget_hit = true;
      break;
    }
    {
      std::lock_guard<std::mutex> slock(mu_);
      stats_.retries++;
    }
    service_.RecordClientRetry();
    if (backoff > 0) std::this_thread::sleep_for(FromSeconds(backoff));
  }

  outcome.elapsed_seconds = Seconds(Clock::now() - start);

  std::lock_guard<std::mutex> slock(mu_);
  if (outcome.answered) {
    stats_.answers++;
    return outcome;
  }
  if (!last_error_frame.empty() && !IsRetryable(last_error.code)) {
    stats_.terminal_errors++;
  } else if (budget_hit) {
    stats_.budget_exhausted++;
  }
  if (last_error_frame.empty()) {
    // Every reply (if any) was transport garbage, or the budget died
    // before the first reply: synthesize a structured error so the
    // caller still gets a decodable frame.
    last_error.code = budget_hit ? WireError::kDeadlineExceeded
                                 : WireError::kInternal;
    last_error.detail = budget_hit
                            ? "resilient client: retry budget exhausted"
                            : (saw_garbage
                                   ? "resilient client: reply corrupted"
                                   : "resilient client: no reply");
    last_error_frame = ResponseFrame::WrapError(last_error);
  }
  outcome.frame = std::move(last_error_frame);
  outcome.error = std::move(last_error);
  return outcome;
}

ClientStats ResilientClient::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ppgnn
