#include "service/resilient_client.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <thread>

namespace ppgnn {
namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

Clock::duration FromSeconds(double s) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(s));
}

/// Shared between Call() and the (possibly two) reply callbacks of one
/// attempt round. Held by shared_ptr so a hedge-loser's late callback
/// lands safely even after Call() has moved on or returned.
struct RoundState {
  std::mutex mu;
  std::condition_variable cv;
  struct Reply {
    std::vector<uint8_t> frame;
    bool from_hedge = false;
  };
  std::vector<Reply> replies;
  int outstanding = 0;
};

/// How one reply (or a whole round) resolves.
enum class Resolution {
  kAnswer,     ///< decodable answer frame: done
  kTerminal,   ///< structured error a retry cannot fix: done
  kRetryable,  ///< structured transient error or transport garbage
};

}  // namespace

std::string ClientStats::ToString() const {
  char buf[320];
  std::snprintf(
      buf, sizeof(buf),
      "calls=%llu attempts=%llu retries=%llu hedges=%llu hedge_wins=%llu "
      "answers=%llu terminal=%llu budget_exhausted=%llu garbage=%llu",
      static_cast<unsigned long long>(calls),
      static_cast<unsigned long long>(attempts),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(hedge_wins),
      static_cast<unsigned long long>(answers),
      static_cast<unsigned long long>(terminal_errors),
      static_cast<unsigned long long>(budget_exhausted),
      static_cast<unsigned long long>(transport_garbage));
  return buf;
}

ResilientClient::ResilientClient(LspService& service, RetryPolicy policy)
    : service_(service), policy_(std::move(policy)), rng_(policy_.seed) {}

bool ResilientClient::IsRetryable(WireError code) {
  return code == WireError::kOverloaded || code == WireError::kDeadlineExceeded;
}

double ResilientClient::HedgeDelaySeconds() const {
  if (policy_.hedge_delay_seconds > 0) return policy_.hedge_delay_seconds;
  // Derive from this client's own attempt latencies once there is enough
  // history for a p99 to mean anything.
  if (attempt_latency_.count() >= 8) {
    return std::max(policy_.min_hedge_delay_seconds,
                    attempt_latency_.Quantile(0.99));
  }
  return policy_.fallback_hedge_delay_seconds;
}

double ResilientClient::BackoffSeconds(int completed_attempts) {
  double base = policy_.initial_backoff_seconds *
                std::pow(policy_.backoff_multiplier,
                         std::max(completed_attempts - 1, 0));
  base = std::min(base, policy_.max_backoff_seconds);
  double jitter = 0.0;
  if (policy_.jitter_fraction > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    jitter = policy_.jitter_fraction * (2.0 * rng_.NextDouble() - 1.0);
  }
  return std::max(base * (1.0 + jitter), 0.0);
}

ClientCallOutcome ResilientClient::Call(ServiceRequest request) {
  const Clock::time_point start = Clock::now();
  const Clock::time_point budget_deadline =
      policy_.total_budget_seconds > 0
          ? start + FromSeconds(policy_.total_budget_seconds)
          : Clock::time_point::max();

  ClientCallOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.calls++;
  }

  // The most recent structured (decodable) error frame, so a failed call
  // still hands the caller something a ResponseFrame::Decode understands.
  std::vector<uint8_t> last_error_frame;
  ErrorMessage last_error;
  bool saw_garbage = false;
  bool budget_hit = false;

  const int max_attempts = std::max(policy_.max_attempts, 1);
  while (outcome.attempts < max_attempts) {
    const Clock::time_point attempt_start = Clock::now();
    if (attempt_start >= budget_deadline) {
      budget_hit = true;
      break;
    }
    const double remaining =
        budget_deadline == Clock::time_point::max()
            ? 0.0  // unlimited: let the request carry its own deadline
            : Seconds(budget_deadline - attempt_start);

    auto state = std::make_shared<RoundState>();
    auto submit = [&](bool from_hedge) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->outstanding++;
      }
      ServiceRequest copy = request;
      if (remaining > 0 &&
          (copy.deadline_seconds <= 0 || copy.deadline_seconds > remaining)) {
        copy.deadline_seconds = remaining;
      }
      const Clock::time_point submitted = Clock::now();
      // Submit may run the callback inline (queue-full reject), so no
      // locks of ours are held here; a reject still surfaces through the
      // callback's error frame, so the bool is redundant.
      (void)service_.Submit(std::move(copy), [this, state, from_hedge,
                                       submitted](std::vector<uint8_t> frame) {
        attempt_latency_.Record(Seconds(Clock::now() - submitted));
        std::lock_guard<std::mutex> lock(state->mu);
        state->replies.push_back({std::move(frame), from_hedge});
        state->outstanding--;
        state->cv.notify_all();
      });
    };

    outcome.attempts++;
    {
      std::lock_guard<std::mutex> lock(mu_);
      stats_.attempts++;
    }
    submit(/*from_hedge=*/false);

    const Clock::time_point hedge_at =
        policy_.hedge ? attempt_start + FromSeconds(HedgeDelaySeconds())
                      : Clock::time_point::max();
    bool hedged_this_round = false;
    bool round_decided = false;
    Resolution round_resolution = Resolution::kRetryable;

    std::unique_lock<std::mutex> lock(state->mu);
    size_t consumed = 0;
    while (!round_decided) {
      // Evaluate any replies that arrived since the last look.
      for (; consumed < state->replies.size(); ++consumed) {
        RoundState::Reply& reply = state->replies[consumed];
        Result<ResponseFrame> decoded = ResponseFrame::Decode(reply.frame);
        if (!decoded.ok()) {
          // Transport garbage (e.g. an injected corrupt frame): the reply
          // is unusable but the failure class is transient.
          saw_garbage = true;
          std::lock_guard<std::mutex> slock(mu_);
          stats_.transport_garbage++;
          continue;
        }
        if (!decoded.value().is_error) {
          outcome.frame = std::move(reply.frame);
          outcome.answered = true;
          outcome.hedge_won = reply.from_hedge;
          round_resolution = Resolution::kAnswer;
          round_decided = true;
          break;
        }
        last_error = decoded.value().error;
        last_error_frame = std::move(reply.frame);
        if (!IsRetryable(last_error.code)) {
          round_resolution = Resolution::kTerminal;
          round_decided = true;
          break;
        }
      }
      if (round_decided) break;
      // Nothing decisive yet. If nothing is outstanding either, the
      // round has failed retryably.
      if (state->outstanding == 0) break;
      const Clock::time_point now = Clock::now();
      if (now >= budget_deadline) {
        // Abandon the outstanding attempt: its late reply only touches
        // `state`, which outlives us via the shared_ptr in the callback.
        budget_hit = true;
        round_decided = true;
        round_resolution = Resolution::kRetryable;
        break;
      }
      Clock::time_point wake = budget_deadline;
      const bool may_hedge = policy_.hedge && !hedged_this_round &&
                             state->replies.empty();
      if (may_hedge) wake = std::min(wake, hedge_at);
      if (wake == Clock::time_point::max()) {
        state->cv.wait(lock);
      } else {
        state->cv.wait_until(lock, wake);
      }
      if (may_hedge && Clock::now() >= hedge_at && state->replies.empty() &&
          state->outstanding > 0) {
        hedged_this_round = true;
        outcome.hedges++;
        {
          std::lock_guard<std::mutex> slock(mu_);
          stats_.hedges++;
        }
        service_.RecordClientHedge();
        lock.unlock();
        submit(/*from_hedge=*/true);
        lock.lock();
      }
    }
    lock.unlock();

    if (round_resolution == Resolution::kAnswer) {
      if (outcome.hedge_won) {
        std::lock_guard<std::mutex> slock(mu_);
        stats_.hedge_wins++;
      }
      break;
    }
    if (round_resolution == Resolution::kTerminal) break;
    if (budget_hit || outcome.attempts >= max_attempts) break;

    // Transient failure with budget and attempts to spare: back off.
    const double backoff = BackoffSeconds(outcome.attempts);
    if (budget_deadline != Clock::time_point::max() &&
        Clock::now() + FromSeconds(backoff) >= budget_deadline) {
      budget_hit = true;
      break;
    }
    {
      std::lock_guard<std::mutex> slock(mu_);
      stats_.retries++;
    }
    service_.RecordClientRetry();
    if (backoff > 0) std::this_thread::sleep_for(FromSeconds(backoff));
  }

  outcome.elapsed_seconds = Seconds(Clock::now() - start);

  std::lock_guard<std::mutex> slock(mu_);
  if (outcome.answered) {
    stats_.answers++;
    return outcome;
  }
  if (!last_error_frame.empty() && !IsRetryable(last_error.code)) {
    stats_.terminal_errors++;
  } else if (budget_hit) {
    stats_.budget_exhausted++;
  }
  if (last_error_frame.empty()) {
    // Every reply (if any) was transport garbage, or the budget died
    // before the first reply: synthesize a structured error so the
    // caller still gets a decodable frame.
    last_error.code = budget_hit ? WireError::kDeadlineExceeded
                                 : WireError::kInternal;
    last_error.detail = budget_hit
                            ? "resilient client: retry budget exhausted"
                            : (saw_garbage
                                   ? "resilient client: reply corrupted"
                                   : "resilient client: no reply");
    last_error_frame = ResponseFrame::WrapError(last_error);
  }
  outcome.frame = std::move(last_error_frame);
  outcome.error = std::move(last_error);
  return outcome;
}

ClientStats ResilientClient::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace ppgnn
