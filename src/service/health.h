// HealthMonitor: the deterministic per-replica health state machine
// behind the replica-set failover layer.
//
// Every replica in a set is tracked through four states:
//
//         consecutive failures           cooldown elapsed
//   healthy ----------------> suspect --------.
//      ^                        |             | (more failures)
//      | recover_after          v             v
//      | consecutive         [still        down <------ probe failed
//      | successes            routable]      |
//      |                                     | TryAdmitProbe (half-open,
//      '------- suspect <-- probe ok --- probing   exactly one owner)
//
//   * healthy -> suspect after `suspect_after` consecutive failures, or
//     when the EWMA probe/leg latency crosses `latency_suspect_seconds`
//     (0 disables the latency trigger). A suspect replica is still
//     routed to in its original preference position — flap suppression:
//     one blip must not reshuffle traffic — it is just one step closer
//     to `down`.
//   * suspect -> down after `down_after` total consecutive failures;
//     suspect -> healthy after `recover_after` consecutive successes.
//   * down replicas receive no traffic. Once `down_cooldown_seconds`
//     has elapsed, TryAdmitProbe admits exactly one half-open probe
//     (state `probing`); every other caller keeps seeing the replica as
//     unroutable until the probe resolves.
//   * probing: a probe success re-admits the replica as `suspect` (it
//     must still earn `recover_after` successes to be `healthy` again);
//     a probe failure returns it to `down` and re-arms the cooldown.
//
// All transitions are pure functions of the reported outcome sequence
// and the injected clock, so a seeded probe schedule replays exactly —
// the two-run determinism tests in health_test.cc rely on this. The
// monitor itself performs no I/O: callers (ReplicaSet, tests) run the
// probes — through the `shard.replica.<shard>.<replica>` failpoint —
// and report outcomes here.

#ifndef PPGNN_SERVICE_HEALTH_H_
#define PPGNN_SERVICE_HEALTH_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"

namespace ppgnn {

enum class ReplicaHealth : uint8_t {
  kHealthy = 0,
  kSuspect = 1,  ///< degraded but still routable (flap suppression)
  kProbing = 2,  ///< down, with one half-open probe in flight
  kDown = 3,     ///< unroutable until cooldown + successful probe
};

const char* ReplicaHealthToString(ReplicaHealth state);

struct HealthConfig {
  using Clock = std::chrono::steady_clock;

  /// Consecutive failures that demote healthy -> suspect (>= 1).
  int suspect_after = 1;
  /// Consecutive failures that demote (healthy or suspect) -> down.
  int down_after = 3;
  /// Consecutive successes that promote suspect -> healthy.
  int recover_after = 2;
  /// EWMA smoothing for observed probe/leg latency, in (0, 1].
  double ewma_alpha = 0.3;
  /// EWMA latency above which a healthy replica turns suspect;
  /// 0 = latency never drives a transition.
  double latency_suspect_seconds = 0.0;
  /// How long a down replica stays unprobed before the half-open gate
  /// opens.
  double down_cooldown_seconds = 0.2;
  /// Fractional jitter on each down-cooldown: every down transition
  /// draws its own window from down_cooldown_seconds * (1 ± jitter),
  /// using a seeded per-monitor stream. Replicas that died together (a
  /// killed server, a severed proxy) then reopen their half-open gates
  /// staggered instead of probing in lockstep — the thundering-herd fix
  /// for the TCP transport, where a reopened gate costs a real dial.
  /// 0 disables jitter (every window is exactly the configured value).
  /// Draws are consumed in down-transition order under the monitor
  /// lock, so a fixed (seed, outcome sequence) replays exact windows.
  double cooldown_jitter_fraction = 0.0;
  uint64_t cooldown_jitter_seed = 0x9e1d;
  /// Cadence of the background prober (ShardedLspService); the monitor
  /// itself is probe-driven and does not read this.
  double probe_interval_seconds = 0.05;
  /// Injectable time source so tests can script cooldown expiry
  /// deterministically. Null = steady_clock::now.
  std::function<Clock::time_point()> clock;
};

class HealthMonitor {
 public:
  using Clock = HealthConfig::Clock;

  struct Transition {
    int replica = 0;
    ReplicaHealth from = ReplicaHealth::kHealthy;
    ReplicaHealth to = ReplicaHealth::kHealthy;
  };

  HealthMonitor(int replicas, HealthConfig config);

  int replicas() const { return static_cast<int>(replica_count_); }
  ReplicaHealth state(int replica) const;
  double ewma_latency_seconds(int replica) const;
  /// The jittered cooldown window drawn at this replica's most recent
  /// down transition, seconds (0 before any). Determinism tests compare
  /// these across same-seed replays.
  double last_cooldown_seconds(int replica) const;
  /// Transitions this replica has undergone since construction.
  uint64_t transitions(int replica) const;
  uint64_t total_transitions() const;

  /// Reports one query-leg or probe outcome. Success latency feeds the
  /// EWMA; a probing replica's outcome resolves the half-open probe.
  void ReportSuccess(int replica, double latency_seconds);
  void ReportFailure(int replica);

  /// Half-open gate: true exactly once per cooldown expiry, for the
  /// caller that owns the single probe (replica moves to kProbing).
  /// False for non-down replicas, unexpired cooldowns, and every caller
  /// racing the winner.
  [[nodiscard]] bool TryAdmitProbe(int replica);

  /// Routable replicas in preference order: healthy and suspect ones in
  /// index order (the primary-first order is stable under flapping —
  /// a suspect primary keeps its slot). kProbing and kDown replicas are
  /// excluded; probe traffic goes through TryAdmitProbe instead.
  std::vector<int> PreferenceOrder() const;

  /// Observer invoked (under the monitor lock) on every transition.
  /// Set before traffic starts; used by determinism tests.
  void set_on_transition(std::function<void(Transition)> fn);

 private:
  struct ReplicaState {
    ReplicaHealth health = ReplicaHealth::kHealthy;
    int consecutive_failures = 0;
    int consecutive_successes = 0;
    double ewma_latency_seconds = 0.0;
    bool has_latency = false;
    Clock::time_point down_since{};
    /// Drawn (jittered) at the down transition; what TryAdmitProbe waits.
    double cooldown_seconds = 0.0;
    uint64_t transitions = 0;
  };

  Clock::time_point Now() const;
  /// Moves `replica` to `to` under mu_, bumping counters and notifying
  /// the observer.
  // ppgnn: requires(mu_)
  void TransitionLocked(int replica, ReplicaHealth to);

  const size_t replica_count_;
  const HealthConfig config_;
  mutable std::mutex mu_;
  // ppgnn: guarded_by(states_, mu_)
  std::vector<ReplicaState> states_;
  // ppgnn: guarded_by(rng_, mu_)
  Rng rng_;  ///< cooldown-jitter stream; consumed in transition order
  // ppgnn: guarded_by(on_transition_, mu_)
  std::function<void(Transition)> on_transition_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_HEALTH_H_
