#include "service/lsp_service.h"

#include <algorithm>
#include <future>

#include "common/failpoint.h"

namespace ppgnn {
namespace {

void MergeInstrumentation(QueryInstrumentation& into,
                          const QueryInstrumentation& from) {
  into.delta_prime += from.delta_prime;
  into.omega += from.omega;
  into.answer_width_m += from.answer_width_m;
  into.pois_returned += from.pois_returned;
  into.sanitize_samples += from.sanitize_samples;
  into.sanitize_tests += from.sanitize_tests;
  into.sanitize_seconds += from.sanitize_seconds;
  into.lsp_parallel_seconds += from.lsp_parallel_seconds;
  into.degraded_users += from.degraded_users;
}

}  // namespace

std::string ServiceStats::ToString() const {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "accepted=%llu rejected=%llu served=%llu failed=%llu "
                "deadline_expired=%llu queued=%zu retries=%llu hedges=%llu "
                "degraded=%llu errors[malformed=%llu overloaded=%llu "
                "deadline=%llu internal=%llu]",
                static_cast<unsigned long long>(accepted),
                static_cast<unsigned long long>(rejected),
                static_cast<unsigned long long>(served),
                static_cast<unsigned long long>(failed),
                static_cast<unsigned long long>(deadline_expired),
                queue_depth, static_cast<unsigned long long>(retries),
                static_cast<unsigned long long>(hedges),
                static_cast<unsigned long long>(degraded_queries),
                static_cast<unsigned long long>(error_replies[0]),
                static_cast<unsigned long long>(error_replies[1]),
                static_cast<unsigned long long>(error_replies[2]),
                static_cast<unsigned long long>(error_replies[3]));
  return std::string(buf) + " | " + latency.ToString();
}

LspService::LspService(const LspDatabase& db, ServiceConfig config)
    : db_(db), config_(std::move(config)) {
  const int workers = std::max(config_.workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
}

LspService::~LspService() { Shutdown(); }

bool LspService::Submit(ServiceRequest request, Callback done) {
  const Clock::time_point now = Clock::now();
  double budget = request.deadline_seconds > 0
                      ? request.deadline_seconds
                      : config_.default_deadline_seconds;
  PendingRequest pending;
  pending.request = std::move(request);
  pending.done = std::move(done);
  pending.admitted = now;
  pending.deadline =
      budget > 0 ? now + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(budget))
                 : Clock::time_point::max();
  // "service.admit" simulates admission-control pressure: a fired drop
  // rejects the request exactly as a full queue would.
  const bool inject_reject = FailpointDrop("service.admit");
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!inject_reject && !stopping_ &&
        queue_.size() < config_.queue_capacity) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      queue_.push_back(std::move(pending));
      queue_cv_.notify_one();
      return true;
    }
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  latency_.Record(std::chrono::duration<double>(Clock::now() - now).count());
  pending.done(MakeErrorFrame(WireError::kOverloaded,
                              "lsp service: request queue full"));
  return false;
}

std::vector<uint8_t> LspService::Call(ServiceRequest request) {
  std::promise<std::vector<uint8_t>> promise;
  std::future<std::vector<uint8_t>> future = promise.get_future();
  // A rejected submit still delivers the error frame via the callback,
  // so the accepted/rejected bool carries no extra information here.
  (void)Submit(std::move(request), [&promise](std::vector<uint8_t> frame) {
    promise.set_value(std::move(frame));
  });
  return future.get();
}

void LspService::Reply(PendingRequest& req, std::vector<uint8_t> frame) {
  // "service.reply" corrupts the encoded frame in flight; the client sees
  // a checksum mismatch, never a silently-wrong answer.
  FailpointCorrupt("service.reply", frame);
  latency_.Record(
      std::chrono::duration<double>(Clock::now() - req.admitted).count());
  req.done(std::move(frame));
}

std::vector<uint8_t> LspService::MakeErrorFrame(WireError code,
                                                std::string detail) {
  error_replies_[static_cast<size_t>(code)].fetch_add(
      1, std::memory_order_relaxed);
  ErrorMessage err;
  err.code = code;
  err.detail = std::move(detail);
  return ResponseFrame::WrapError(err);
}

void LspService::WorkerLoop() {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      req = std::move(queue_.front());
      queue_.pop_front();
    }

    // Queued past its budget: answer without executing at all.
    if (Clock::now() >= req.deadline) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      Reply(req, MakeErrorFrame(WireError::kDeadlineExceeded,
                                "lsp service: deadline expired in queue"));
      continue;
    }

    // Publish the in-flight deadline so the monitor can cancel us
    // cooperatively mid-query.
    std::shared_ptr<InFlight> flight;
    if (req.deadline != Clock::time_point::max()) {
      flight = std::make_shared<InFlight>();
      flight->deadline = req.deadline;
      flight->cancel = std::make_shared<std::atomic<bool>>(false);
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.push_back(flight);
      inflight_cv_.notify_one();
    }

    if (config_.test_execute_hook) config_.test_execute_hook();

    QueryInstrumentation info;
    // "service.execute" stands in for a slow or failing worker: an
    // injected delay or error replaces/precedes the real execution.
    const Status injected = FailpointCheck("service.execute");
    Result<std::vector<uint8_t>> answer =
        injected.ok()
            ? LspHandleQuery(db_, req.request.query, req.request.uploads,
                             config_.test_config, config_.sanitize,
                             config_.lsp_threads, &info,
                             flight != nullptr ? flight->cancel.get() : nullptr)
            : Result<std::vector<uint8_t>>(injected);

    if (flight != nullptr) {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), flight),
                      inflight_.end());
    }

    if (answer.ok()) {
      served_.fetch_add(1, std::memory_order_relaxed);
      if (req.request.degraded_users > 0) {
        degraded_queries_.fetch_add(1, std::memory_order_relaxed);
        info.degraded_users += req.request.degraded_users;
      }
      {
        std::lock_guard<std::mutex> lock(totals_mu_);
        MergeInstrumentation(totals_, info);
      }
      Reply(req, ResponseFrame::WrapAnswer(std::move(answer).value()));
    } else {
      const Status status = answer.status();
      const WireError code = WireErrorFromStatus(status);
      if (code == WireError::kDeadlineExceeded) {
        deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed_.fetch_add(1, std::memory_order_relaxed);
      }
      Reply(req, MakeErrorFrame(code, status.ToString()));
    }
  }
}

void LspService::MonitorLoop() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  for (;;) {
    if (monitor_stop_) return;
    Clock::time_point next = Clock::time_point::max();
    const Clock::time_point now = Clock::now();
    for (const std::shared_ptr<InFlight>& flight : inflight_) {
      if (now >= flight->deadline) {
        flight->cancel->store(true, std::memory_order_relaxed);
      } else {
        next = std::min(next, flight->deadline);
      }
    }
    if (next == Clock::time_point::max()) {
      inflight_cv_.wait(lock);
    } else {
      inflight_cv_.wait_until(lock, next);
    }
  }
}

ServiceStats LspService::Stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < error_replies_.size(); ++i) {
    stats.error_replies[i] = error_replies_[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
  }
  stats.latency = latency_.Summarize();
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    stats.totals = totals_;
  }
  return stats;
}

void LspService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    monitor_stop_ = true;
  }
  inflight_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

}  // namespace ppgnn
