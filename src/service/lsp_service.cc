#include "service/lsp_service.h"

#include <algorithm>
#include <future>

#include "bigint/fixedbase.h"
#include "common/failpoint.h"

namespace ppgnn {
namespace {

void MergeInstrumentation(QueryInstrumentation& into,
                          const QueryInstrumentation& from) {
  into.delta_prime += from.delta_prime;
  into.omega += from.omega;
  into.answer_width_m += from.answer_width_m;
  into.pois_returned += from.pois_returned;
  into.sanitize_samples += from.sanitize_samples;
  into.sanitize_tests += from.sanitize_tests;
  into.sanitize_seconds += from.sanitize_seconds;
  into.lsp_parallel_seconds += from.lsp_parallel_seconds;
  into.degraded_users += from.degraded_users;
}

double Seconds(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

AimdLimiter::Options LimiterOptions(const ServiceConfig& config) {
  AimdLimiter::Options options;
  const int workers = std::max(config.workers, 1);
  options.target_p99_seconds = config.target_p99_seconds;
  options.min_concurrency = std::max(config.min_concurrency, 1);
  options.max_concurrency =
      config.max_concurrency > 0 ? config.max_concurrency : workers;
  // Start wide open: the limiter only bites once a latency signal says
  // the pool is over-driving the machine.
  options.initial_concurrency = options.max_concurrency;
  options.window = config.aimd_window;
  return options;
}

ReplyCache::Options CacheOptions(const ServiceConfig& config) {
  ReplyCache::Options options;
  options.capacity = config.reply_cache_capacity;
  options.ttl_seconds = config.reply_cache_ttl_seconds;
  options.in_flight_grace_seconds = config.reply_cache_in_flight_grace_seconds;
  return options;
}

}  // namespace

std::string ServiceStats::ToString() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "accepted=%llu rejected=%llu (shed=%llu) served=%llu failed=%llu "
      "deadline_expired=%llu (queue=%llu exec=%llu) queued=%zu limit=%d "
      "aimd[+%llu/-%llu] dedup[join=%llu replay=%llu purged=%llu] "
      "retries=%llu hedges=%llu degraded=%llu degraded_shards=%llu "
      "ladder[exact=%llu failover=%llu hedge_won=%llu transitions=%llu] "
      "drain_flushed=%llu "
      "errors[malformed=%llu overloaded=%llu "
      "deadline=%llu internal=%llu shutting_down=%llu]",
      static_cast<unsigned long long>(accepted),
      static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(served),
      static_cast<unsigned long long>(failed),
      static_cast<unsigned long long>(deadline_expired),
      static_cast<unsigned long long>(expired_in_queue),
      static_cast<unsigned long long>(abandoned_executing), queue_depth,
      concurrency_limit, static_cast<unsigned long long>(aimd_increases),
      static_cast<unsigned long long>(aimd_decreases),
      static_cast<unsigned long long>(dedup_joins),
      static_cast<unsigned long long>(dedup_replays),
      static_cast<unsigned long long>(dedup_purged),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(hedges),
      static_cast<unsigned long long>(degraded_queries),
      static_cast<unsigned long long>(degraded_shards),
      static_cast<unsigned long long>(exact_despite_failures),
      static_cast<unsigned long long>(replica_failovers),
      static_cast<unsigned long long>(replica_hedge_wins),
      static_cast<unsigned long long>(health_transitions),
      static_cast<unsigned long long>(drain_flushed),
      static_cast<unsigned long long>(error_replies[0]),
      static_cast<unsigned long long>(error_replies[1]),
      static_cast<unsigned long long>(error_replies[2]),
      static_cast<unsigned long long>(error_replies[3]),
      static_cast<unsigned long long>(error_replies[4]));
  char blinding[192];
  std::snprintf(
      blinding, sizeof(blinding),
      " blinding[hit=%llu miss=%llu refilled=%llu pooled=%llu] "
      "fixedbase[engines=%llu bytes=%llu]",
      static_cast<unsigned long long>(blinding_pool_hits),
      static_cast<unsigned long long>(blinding_pool_misses),
      static_cast<unsigned long long>(blinding_refilled),
      static_cast<unsigned long long>(blinding_pooled),
      static_cast<unsigned long long>(fixed_base_engines),
      static_cast<unsigned long long>(fixed_base_table_bytes));
  return std::string(buf) + blinding + " | e2e " + latency.ToString() +
         " | wait " + queue_wait.ToString() + " | exec " + execute.ToString();
}

LspService::LspService(Handler handler, ServiceConfig config)
    : handler_(std::move(handler)),
      config_(std::move(config)),
      cost_model_(config_.cost_model != nullptr
                      ? config_.cost_model
                      : std::make_shared<CostModel>()),
      limiter_(LimiterOptions(config_)),
      reply_cache_(CacheOptions(config_)) {
  const int workers = std::max(config_.workers, 1);
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  monitor_ = std::thread([this] { MonitorLoop(); });
}

LspService::LspService(const LspDatabase& db, ServiceConfig config)
    : LspService(Handler{}, std::move(config)) {
  // Assigned after delegation (the workers only read handler_ once a
  // request has passed through Submit's lock, so this is race-free): the
  // default handler dispatches on the wire shape — plaintext shard
  // queries skip the crypto pipeline entirely.
  const LspDatabase* database = &db;
  handler_ = [this, database](const ServiceRequest& request,
                              const HandlerContext& ctx) {
    if (IsShardQuery(request.query)) {
      return LspHandleShardQuery(*database, request.query, ctx.info,
                                 ctx.cancel);
    }
    return LspHandleQuery(*database, request.query, request.uploads,
                          config_.test_config, config_.sanitize,
                          config_.lsp_threads, ctx.info, ctx.cancel);
  };
}

LspService::~LspService() { Shutdown(); }

LspService::Callback LspService::MakeLeg(Clock::time_point admitted,
                                         Callback done) {
  return [this, admitted, done = std::move(done)](std::vector<uint8_t> frame) {
    // Same delivery path as a primary Reply: per-leg transport
    // corruption, per-leg end-to-end latency.
    FailpointCorrupt("service.reply", frame);
    latency_.Record(Seconds(Clock::now() - admitted));
    done(std::move(frame));
  };
}

bool LspService::Submit(ServiceRequest request, Callback done) {
  const Clock::time_point now = Clock::now();
  double budget = request.deadline_seconds > 0
                      ? request.deadline_seconds
                      : config_.default_deadline_seconds;
  uint64_t dedup_key = request.idempotency_key;

  PendingRequest pending;
  pending.admitted = now;
  // Admission reads only the public wire header — the deadline and
  // idempotency trailer plus the cost features — without decoding any
  // ciphertext. A failed peek is NOT rejected here: the request flows
  // through so the worker's full decode produces the usual kMalformed
  // reply (and admission simply runs without cost information).
  if (Result<QueryWireHeader> header = PeekQueryHeader(request.query);
      header.ok()) {
    // Shard queries are plaintext: the crypto-calibrated cost model would
    // wildly over-price them, so they ride through without features. The
    // deadline/idempotency trailer still applies.
    if (!header.value().is_shard) {
      pending.features = CostFeatures::FromHeader(header.value());
      pending.has_features = true;
    }
    if (dedup_key == 0) dedup_key = header.value().idempotency_key;
    if (header.value().deadline_ms > 0) {
      const double wire_budget =
          static_cast<double>(header.value().deadline_ms) / 1000.0;
      budget = budget > 0 ? std::min(budget, wire_budget) : wire_budget;
    }
  }
  pending.deadline =
      budget > 0 ? now + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(budget))
                 : Clock::time_point::max();
  pending.request = std::move(request);

  // Dedup routing first: joining an in-flight duplicate or replaying a
  // cached answer costs (nearly) nothing, so it happens even when a
  // fresh request would be shed.
  if (config_.enable_dedup && dedup_key != 0) {
    ReplyCache::AdmitResult routed = reply_cache_.AdmitOrAttach(
        dedup_key, MakeLeg(now, done), pending.deadline);
    if (!routed.expired_waiters.empty()) {
      // Waiters of abandoned primaries (deadline + grace long past with
      // no Complete/Abort) purged during this admission: each is owed a
      // terminal deadline reply — without the purge they would hang as
      // "joined" to an execution that will never finish.
      dedup_purged_.fetch_add(routed.expired_waiters.size(),
                              std::memory_order_relaxed);
      std::vector<uint8_t> expired_frame =
          MakeErrorFrame(WireError::kDeadlineExceeded,
                         "lsp service: joined primary abandoned");
      for (ReplyCache::Waiter& waiter : routed.expired_waiters) {
        waiter(expired_frame);
      }
    }
    if (routed.admission == ReplyCache::Admission::kReplayed) {
      dedup_replays_.fetch_add(1, std::memory_order_relaxed);
      MakeLeg(now, std::move(done))(std::move(routed.frame));
      return true;
    }
    if (routed.admission == ReplyCache::Admission::kJoined) {
      dedup_joins_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    pending.cache_key = dedup_key;
    pending.cache_generation = routed.generation;
  }

  // "service.admit" simulates admission-control pressure: a fired drop
  // rejects the request exactly as a full queue would.
  const bool inject_reject = FailpointDrop("service.admit");

  // Cost-aware shedding: if the predicted execute time already exceeds
  // the whole budget, the only possible outcome of admission would be a
  // kDeadlineExceeded reply *after* burning crypto on it. Reject now,
  // before any crypto, and tell the client how far off it was.
  if (!inject_reject && config_.cost_admission && pending.has_features &&
      budget > 0) {
    const double predicted = cost_model_->PredictSeconds(pending.features);
    if (predicted > budget) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      std::vector<uint8_t> frame = MakeErrorFrame(
          WireError::kOverloaded,
          "lsp service: predicted cost exceeds request budget",
          RetryAfterHintMs(predicted - budget));
      if (pending.cache_key != 0) {
        AbortPrimary(pending.cache_key, pending.cache_generation, frame);
      }
      latency_.Record(Seconds(Clock::now() - now));
      done(std::move(frame));
      return false;
    }
  }

  bool shutting_down = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!inject_reject && !stopping_ &&
        queue_.size() < config_.queue_capacity) {
      accepted_.fetch_add(1, std::memory_order_relaxed);
      pending.done = std::move(done);
      queue_.push_back(std::move(pending));
      queue_cv_.notify_one();
      return true;
    }
    shutting_down = stopping_;
  }
  rejected_.fetch_add(1, std::memory_order_relaxed);
  // A draining service is not "overloaded": the structured kShuttingDown
  // reply tells the client a resend elsewhere (or after the hint) can
  // win, where kOverloaded would mean "this instance, later".
  std::vector<uint8_t> frame =
      shutting_down && !inject_reject
          ? MakeErrorFrame(WireError::kShuttingDown,
                           "lsp service: shutting down",
                           RetryAfterHintMs(0.0))
          : MakeErrorFrame(WireError::kOverloaded,
                           "lsp service: request queue full",
                           RetryAfterHintMs(0.0));
  if (pending.cache_key != 0) {
    AbortPrimary(pending.cache_key, pending.cache_generation, frame);
  }
  latency_.Record(Seconds(Clock::now() - now));
  done(std::move(frame));
  return false;
}

std::vector<uint8_t> LspService::Call(ServiceRequest request) {
  std::promise<std::vector<uint8_t>> promise;
  std::future<std::vector<uint8_t>> future = promise.get_future();
  // A rejected submit still delivers the error frame via the callback,
  // so the accepted/rejected bool carries no extra information here.
  (void)Submit(std::move(request), [&promise](std::vector<uint8_t> frame) {
    promise.set_value(std::move(frame));
  });
  return future.get();
}

void LspService::Reply(PendingRequest& req, std::vector<uint8_t> frame) {
  // "service.reply" corrupts the encoded frame in flight; the client sees
  // a checksum mismatch, never a silently-wrong answer.
  FailpointCorrupt("service.reply", frame);
  latency_.Record(Seconds(Clock::now() - req.admitted));
  req.done(std::move(frame));
}

void LspService::Finish(PendingRequest& req, std::vector<uint8_t> frame,
                        bool cache_for_replay) {
  if (req.cache_key != 0) {
    // The cache keeps (and the joined legs receive) the pre-corruption
    // frame: transport faults are per-leg, never cached.
    std::vector<ReplyCache::Waiter> waiters = reply_cache_.Complete(
        req.cache_key, req.cache_generation, frame, cache_for_replay);
    for (ReplyCache::Waiter& waiter : waiters) waiter(frame);
  }
  Reply(req, std::move(frame));
}

void LspService::AbortPrimary(uint64_t cache_key, uint64_t cache_generation,
                              const std::vector<uint8_t>& frame) {
  std::vector<ReplyCache::Waiter> waiters =
      reply_cache_.Abort(cache_key, cache_generation);
  for (ReplyCache::Waiter& waiter : waiters) waiter(frame);
}

std::vector<uint8_t> LspService::MakeErrorFrame(WireError code,
                                                std::string detail,
                                                uint64_t retry_after_ms) {
  error_replies_[static_cast<size_t>(code)].fetch_add(
      1, std::memory_order_relaxed);
  ErrorMessage err;
  err.code = code;
  err.detail = std::move(detail);
  err.retry_after_ms = retry_after_ms;
  return ResponseFrame::WrapError(err);
}

uint64_t LspService::RetryAfterHintMs(double extra_seconds) {
  if (config_.retry_after_hint_ms > 0) return config_.retry_after_hint_ms;
  // Backlog drain estimate: queued requests times the observed mean
  // execute time, divided by the concurrency actually allowed. All
  // public metadata; before any execution has been observed the floor
  // applies.
  const double mean_execute = execute_.Summarize().mean_seconds;
  size_t depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = queue_.size();
  }
  const double drain = (static_cast<double>(depth) + 1.0) * mean_execute /
                       static_cast<double>(std::max(limiter_.limit(), 1));
  const double hint = std::clamp(std::max(drain, extra_seconds), 0.010, 10.0);
  return static_cast<uint64_t>(hint * 1000.0);
}

void LspService::WorkerLoop() {
  for (;;) {
    PendingRequest req;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] {
        // The AIMD limit — not the pool size — bounds concurrent
        // execution. On shutdown the limit is ignored so the queue
        // drains promptly.
        return stopping_ ||
               (!queue_.empty() && executing_ < limiter_.limit());
      });
      if (queue_.empty()) return;  // stopping_ and drained
      req = std::move(queue_.front());
      queue_.pop_front();
      ++executing_;
    }
    ProcessRequest(req);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --executing_;
    }
    // A finished execution frees a concurrency slot and may have raised
    // the AIMD limit; wake all waiters to re-evaluate, not just one.
    queue_cv_.notify_all();
  }
}

void LspService::ProcessRequest(PendingRequest& req) {
  const Clock::time_point dequeued = Clock::now();
  queue_wait_.Record(Seconds(dequeued - req.admitted));

  // Queued past its budget: answer without executing at all.
  if (dequeued >= req.deadline) {
    deadline_expired_.fetch_add(1, std::memory_order_relaxed);
    expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
    Finish(req,
           MakeErrorFrame(WireError::kDeadlineExceeded,
                          "lsp service: deadline expired in queue"),
           /*cache_for_replay=*/false);
    return;
  }

  // Second cost gate, now against the *remaining* budget: a query whose
  // queue wait ate its slack is abandoned here, before any crypto, so a
  // mid-execution cancellation only happens when the prediction itself
  // was wrong.
  if (config_.cost_admission && req.has_features &&
      req.deadline != Clock::time_point::max()) {
    const double remaining = Seconds(req.deadline - dequeued);
    if (cost_model_->PredictSeconds(req.features) > remaining) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      expired_in_queue_.fetch_add(1, std::memory_order_relaxed);
      Finish(req,
             MakeErrorFrame(
                 WireError::kDeadlineExceeded,
                 "lsp service: predicted cost exceeds remaining deadline"),
             /*cache_for_replay=*/false);
      return;
    }
  }

  // Publish the in-flight deadline so the monitor can cancel us
  // cooperatively mid-query.
  std::shared_ptr<InFlight> flight;
  if (req.deadline != Clock::time_point::max()) {
    flight = std::make_shared<InFlight>();
    flight->deadline = req.deadline;
    flight->cancel = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.push_back(flight);
    inflight_cv_.notify_one();
  }

  if (config_.test_execute_hook) config_.test_execute_hook();

  QueryInstrumentation info;
  // "service.execute" stands in for a slow or failing worker: an
  // injected delay or error replaces/precedes the real execution. The
  // timer starts before the failpoint so injected slowness feeds the
  // AIMD limiter like real slowness would.
  const Clock::time_point execute_start = Clock::now();
  const Status injected = FailpointCheck("service.execute");
  const bool executed = injected.ok();
  HandlerContext ctx;
  ctx.deadline = req.deadline;
  ctx.cancel = flight != nullptr ? flight->cancel.get() : nullptr;
  ctx.info = &info;
  Result<std::vector<uint8_t>> answer =
      executed ? handler_(req.request, ctx)
               : Result<std::vector<uint8_t>>(injected);
  const double execute_seconds = Seconds(Clock::now() - execute_start);

  if (flight != nullptr) {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), flight),
                    inflight_.end());
  }

  if (executed) {
    execute_.Record(execute_seconds);
    limiter_.OnComplete(execute_seconds);
  }

  if (answer.ok()) {
    served_.fetch_add(1, std::memory_order_relaxed);
    // Only full, successful executions train the model: an abandoned
    // query's truncated duration would bias predictions down.
    if (executed && req.has_features) {
      cost_model_->Observe(req.features, execute_seconds);
    }
    if (req.request.degraded_users > 0) {
      degraded_queries_.fetch_add(1, std::memory_order_relaxed);
      info.degraded_users += req.request.degraded_users;
    }
    {
      std::lock_guard<std::mutex> lock(totals_mu_);
      MergeInstrumentation(totals_, info);
    }
    Finish(req, ResponseFrame::WrapAnswer(std::move(answer).value()),
           /*cache_for_replay=*/true);
  } else {
    const Status status = answer.status();
    const WireError code = WireErrorFromStatus(status);
    if (code == WireError::kDeadlineExceeded) {
      deadline_expired_.fetch_add(1, std::memory_order_relaxed);
      abandoned_executing_.fetch_add(1, std::memory_order_relaxed);
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
    }
    Finish(req, MakeErrorFrame(code, status.ToString()),
           /*cache_for_replay=*/false);
  }
}

void LspService::MonitorLoop() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  for (;;) {
    if (monitor_stop_) return;
    Clock::time_point next = Clock::time_point::max();
    const Clock::time_point now = Clock::now();
    for (const std::shared_ptr<InFlight>& flight : inflight_) {
      if (now >= flight->deadline) {
        // Release pairs with the handler's acquire load: everything the
        // monitor observed before cancelling is visible to the bail-out
        // path, and the flag itself feeds control flow (never relaxed).
        flight->cancel->store(true, std::memory_order_release);
      } else {
        next = std::min(next, flight->deadline);
      }
    }
    if (next == Clock::time_point::max()) {
      inflight_cv_.wait(lock);
    } else {
      inflight_cv_.wait_until(lock, next);
    }
  }
}

ServiceStats LspService::Stats() const {
  ServiceStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.served = served_.load(std::memory_order_relaxed);
  stats.failed = failed_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.expired_in_queue = expired_in_queue_.load(std::memory_order_relaxed);
  stats.abandoned_executing =
      abandoned_executing_.load(std::memory_order_relaxed);
  stats.dedup_joins = dedup_joins_.load(std::memory_order_relaxed);
  stats.dedup_replays = dedup_replays_.load(std::memory_order_relaxed);
  stats.dedup_purged = dedup_purged_.load(std::memory_order_relaxed);
  stats.concurrency_limit = limiter_.limit();
  stats.aimd_increases = limiter_.increases();
  stats.aimd_decreases = limiter_.decreases();
  stats.cost_observations = cost_model_->observations();
  stats.retries = retries_.load(std::memory_order_relaxed);
  stats.hedges = hedges_.load(std::memory_order_relaxed);
  stats.degraded_queries = degraded_queries_.load(std::memory_order_relaxed);
  stats.drain_flushed = drain_flushed_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < error_replies_.size(); ++i) {
    stats.error_replies[i] = error_replies_[i].load(std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.queue_depth = queue_.size();
  }
  stats.latency = latency_.Summarize();
  stats.queue_wait = queue_wait_.Summarize();
  stats.execute = execute_.Summarize();
  {
    std::lock_guard<std::mutex> lock(totals_mu_);
    stats.totals = totals_;
  }
  if (config_.observed_encryptor != nullptr) {
    const Encryptor::BlindingStats blinding =
        config_.observed_encryptor->blinding_stats();
    stats.blinding_pool_hits = blinding.pool_hits;
    stats.blinding_pool_misses = blinding.pool_misses;
    stats.blinding_refilled = blinding.refilled;
    stats.blinding_pooled = blinding.pooled;
  }
  const FixedBaseRegistryStats tables = SharedFixedBaseRegistryStats();
  stats.fixed_base_engines = tables.engines;
  stats.fixed_base_table_bytes = tables.table_bytes;
  return stats;
}

void LspService::Shutdown(double drain_deadline_seconds) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (drain_deadline_seconds > 0.0) {
    // Bounded drain: give the workers until the deadline to empty the
    // queue, then flush whatever is left with kShuttingDown frames —
    // every accepted request still gets exactly one reply, just without
    // executing. Executing requests always run to completion (their own
    // deadlines bound them via the monitor).
    std::vector<PendingRequest> flushed;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const Clock::time_point drain_deadline =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(
                                 drain_deadline_seconds));
      queue_cv_.wait_until(lock, drain_deadline, [this] {
        return queue_.empty() && executing_ == 0;
      });
      while (!queue_.empty()) {
        flushed.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
    }
    for (PendingRequest& req : flushed) {
      drain_flushed_.fetch_add(1, std::memory_order_relaxed);
      Finish(req,
             MakeErrorFrame(WireError::kShuttingDown,
                            "lsp service: drain deadline reached",
                            static_cast<uint64_t>(
                                drain_deadline_seconds * 1000.0) +
                                1),
             /*cache_for_replay=*/false);
    }
    if (!flushed.empty()) queue_cv_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    monitor_stop_ = true;
  }
  inflight_cv_.notify_all();
  if (monitor_.joinable()) monitor_.join();
}

}  // namespace ppgnn
