#include "service/cost_model.h"

#include <algorithm>
#include <cmath>

#include "crypto/poi_codec.h"

namespace ppgnn {
namespace {

// Analytic coefficients, fitted to the EXPERIMENTS.md calibration runs
// on the reference machine (1024-bit keys unless noted). Re-calibrated
// after the fixed-base blinding engine landed: rerandomization inside
// selection/sanitize now rides the shared comb, which shifted the
// crypto constants down (see EXPERIMENTS.md section on the encrypt-side
// engine).
//
//   BM_DotProduct multi-exp: 12.2 ms @ delta'=16, 38.5 ms @ 64,
//   75.0 ms @ 128  ->  dot(delta') ~ 3.2 ms + 0.56 ms * delta',
//   split evenly between per-base window-table build (paid once per
//   engine) and the per-row accumulation (paid m times).
//
//   LSP candidate + kNN + sanitize: BM_PrivateSelection at 11.2 ms for
//   delta'=100 with sanitation on top  ->  ~0.35 ms per candidate
//   blended.
//
// Modular multiplication scales ~quadratically in the modulus size, so
// everything crypto is multiplied by (key_bits/1024)^2. The EWMA in
// CostModel::Observe absorbs machine-to-machine constant factors; only
// the *shape* below has to be right.
constexpr double kBaseSeconds = 1.0e-3;       // decode, framing, bookkeeping
constexpr double kCandidateSeconds = 0.35e-3; // kNN + sanitize per candidate
constexpr double kTableSeconds = 0.28e-3;     // window tables per column
constexpr double kColumnSeconds = 0.28e-3;    // per column per row
// Phase-2 scalars are 2*key_bits wide over N^3 arithmetic; ~4x a phase-1
// column operation at the same key size.
constexpr double kOptPhase2Factor = 4.0;
constexpr double kMinPredictionSeconds = 1.0e-4;

// Per-ciphertext encryption constants at 1024-bit keys, measured by
// BM_Encrypt_* (bench_micro.cc); indexed [level - 1]. The exponentiation
// paths walk a ~key_bits-wide exponent whose per-step multiply is
// quadratic in the modulus, hence cubic key scaling; the pooled online
// path is two modular multiplies, hence quadratic.
constexpr double kEncryptNaiveSeconds[2] = {3.9e-3, 10.3e-3};
constexpr double kEncryptFixedBaseSeconds[2] = {0.61e-3, 1.39e-3};
constexpr double kEncryptCrtSeconds[2] = {0.58e-3, 0.99e-3};
constexpr double kEncryptPooledSeconds[2] = {2.3e-6, 12.8e-6};

size_t PackedIntsFor(int k, int key_bits) {
  // PoiCodec requires key_bits >= 128; admission validated the header but
  // the model must stay total, so clamp instead of trusting the caller.
  PoiCodec codec(std::max(key_bits, 128));
  return codec.IntsNeeded(static_cast<size_t>(std::max(k, 1)));
}

}  // namespace

CostFeatures CostFeatures::FromHeader(const QueryWireHeader& h) {
  CostFeatures f;
  f.delta_prime = h.delta_prime;
  f.k = h.k;
  f.key_bits = h.key_bits;
  f.is_opt = h.is_opt;
  f.omega = h.omega;
  return f;
}

double CostModel::AnalyticSeconds(const CostFeatures& f) {
  const double delta = static_cast<double>(f.delta_prime);
  const double m = static_cast<double>(PackedIntsFor(f.k, f.key_bits));
  const double key_scale =
      std::pow(static_cast<double>(std::max(f.key_bits, 128)) / 1024.0, 2.0);
  double seconds = kBaseSeconds + delta * kCandidateSeconds +
                   delta * (kTableSeconds + m * kColumnSeconds) * key_scale;
  if (f.is_opt) {
    const double omega = static_cast<double>(std::max<uint64_t>(f.omega, 1));
    seconds += omega * (kTableSeconds + m * kColumnSeconds) *
               kOptPhase2Factor * key_scale;
  }
  return std::max(seconds, kMinPredictionSeconds);
}

double CostModel::AnalyticEncryptSeconds(int key_bits, int level,
                                         EncryptPath path) {
  const int idx = level >= 2 ? 1 : 0;
  const double ratio = static_cast<double>(std::max(key_bits, 128)) / 1024.0;
  switch (path) {
    case EncryptPath::kNaive:
      return kEncryptNaiveSeconds[idx] * ratio * ratio * ratio;
    case EncryptPath::kFixedBase:
      return kEncryptFixedBaseSeconds[idx] * ratio * ratio * ratio;
    case EncryptPath::kCrt:
      return kEncryptCrtSeconds[idx] * ratio * ratio * ratio;
    case EncryptPath::kPooled:
      return kEncryptPooledSeconds[idx] * ratio * ratio;
  }
  return kEncryptNaiveSeconds[idx] * ratio * ratio * ratio;
}

void CostModel::SeedPrior(const CostFeatures& f, double expected_seconds) {
  if (!(expected_seconds > 0.0)) return;  // also rejects NaN
  const double analytic = AnalyticSeconds(f);
  const int b = BucketIndex(f);
  std::lock_guard<std::mutex> lock(mu_);
  if (bucket_count_[b] > 0) return;  // real data always wins
  bucket_ratio_[b] = expected_seconds / analytic;
  bucket_count_[b] = 1;
}

int CostModel::BucketIndex(const CostFeatures& f) {
  int log_delta = 0;
  for (uint64_t v = f.delta_prime; v > 1 && log_delta < kDeltaBuckets - 1;
       v >>= 1) {
    ++log_delta;
  }
  int key_class;
  if (f.key_bits <= 512) {
    key_class = 0;
  } else if (f.key_bits <= 1024) {
    key_class = 1;
  } else if (f.key_bits <= 2048) {
    key_class = 2;
  } else {
    key_class = 3;
  }
  const int kind = f.is_opt ? 1 : 0;
  return (log_delta * kKeyClasses + key_class) * kKinds + kind;
}

double CostModel::PredictSeconds(const CostFeatures& f) const {
  const double analytic = AnalyticSeconds(f);
  const int b = BucketIndex(f);
  std::lock_guard<std::mutex> lock(mu_);
  const double ratio = bucket_count_[b] > 0 ? bucket_ratio_[b] : global_ratio_;
  return std::max(analytic * ratio, kMinPredictionSeconds);
}

void CostModel::Observe(const CostFeatures& f, double execute_seconds) {
  if (!(execute_seconds > 0.0)) return;  // also rejects NaN
  const double analytic = AnalyticSeconds(f);
  const double ratio = execute_seconds / analytic;
  const int b = BucketIndex(f);
  std::lock_guard<std::mutex> lock(mu_);
  if (bucket_count_[b] == 0) {
    bucket_ratio_[b] = ratio;
  } else {
    bucket_ratio_[b] += kAlpha * (ratio - bucket_ratio_[b]);
  }
  ++bucket_count_[b];
  if (observations_ == 0) {
    global_ratio_ = ratio;
  } else {
    global_ratio_ += kAlpha * (ratio - global_ratio_);
  }
  ++observations_;
}

uint64_t CostModel::observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return observations_;
}

}  // namespace ppgnn
