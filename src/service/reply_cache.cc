#include "service/reply_cache.h"

#include <algorithm>
#include <utility>

namespace ppgnn {

ReplyCache::ReplyCache(const Options& options) : options_(options) {}

bool ReplyCache::InFlightExpiredLocked(const Entry& entry,
                                       Clock::time_point now) const {
  if (entry.completed) return false;
  if (entry.deadline == Clock::time_point::max()) return false;
  const auto grace = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(
          std::max(options_.in_flight_grace_seconds, 0.0)));
  return now - entry.deadline > grace;
}

ReplyCache::AdmitResult ReplyCache::AdmitOrAttach(uint64_t key, Waiter waiter,
                                                  Clock::time_point deadline) {
  AdmitResult result;
  std::lock_guard<std::mutex> lock(mu_);
  const Clock::time_point now = Clock::now();
  EvictLocked(now, &result.expired_waiters);
  auto it = entries_.find(key);
  if (it != entries_.end() && InFlightExpiredLocked(it->second, now)) {
    // The primary for this key is presumed dead (deadline + grace long
    // gone without Complete/Abort). Its joiners get errored out by the
    // caller and the newcomer takes over as a fresh primary — without
    // this, an abandoned query pins its idempotency key forever and
    // every retry "joins" an execution that will never finish.
    for (Waiter& w : it->second.waiters) {
      if (w) result.expired_waiters.push_back(std::move(w));
    }
    entries_.erase(it);
    it = entries_.end();
  }
  if (it == entries_.end()) {
    Entry entry;
    entry.deadline = deadline;
    entry.generation = next_generation_++;
    result.generation = entry.generation;
    in_flight_order_.emplace_back(key, entry.generation);
    entries_.emplace(key, std::move(entry));
    result.admission = Admission::kPrimary;
    return result;
  }
  if (it->second.completed) {
    result.admission = Admission::kReplayed;
    result.frame = it->second.frame;
    return result;
  }
  it->second.waiters.push_back(std::move(waiter));
  result.admission = Admission::kJoined;
  return result;
}

std::vector<ReplyCache::Waiter> ReplyCache::Complete(
    uint64_t key, uint64_t generation, const std::vector<uint8_t>& frame,
    bool cache_for_replay) {
  std::vector<Waiter> waiters;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.completed ||
      it->second.generation != generation) {
    return waiters;
  }
  waiters = std::move(it->second.waiters);
  if (cache_for_replay) {
    it->second.completed = true;
    it->second.frame = frame;
    it->second.waiters.clear();
    it->second.completed_at = Clock::now();
    completed_order_.push_back(key);
    EvictLocked(it->second.completed_at, nullptr);
  } else {
    entries_.erase(it);
  }
  return waiters;
}

std::vector<ReplyCache::Waiter> ReplyCache::Abort(uint64_t key,
                                                  uint64_t generation) {
  std::vector<Waiter> waiters;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.completed ||
      it->second.generation != generation) {
    return waiters;
  }
  waiters = std::move(it->second.waiters);
  entries_.erase(it);
  return waiters;
}

size_t ReplyCache::CompletedEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_order_.size();
}

size_t ReplyCache::InFlightEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [key, entry] : entries_) {
    (void)key;
    if (!entry.completed) ++n;
  }
  return n;
}

void ReplyCache::EvictLocked(Clock::time_point now,
                             std::vector<Waiter>* expired_waiters) {
  const auto ttl = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(options_.ttl_seconds, 0.0)));
  while (!completed_order_.empty()) {
    const uint64_t key = completed_order_.front();
    auto it = entries_.find(key);
    // A key can linger in completed_order_ after its entry was replaced;
    // only a still-completed entry counts against capacity/TTL.
    const bool stale = it == entries_.end() || !it->second.completed;
    const bool over_capacity = completed_order_.size() > options_.capacity;
    const bool expired =
        !stale && options_.ttl_seconds > 0 && now - it->second.completed_at >= ttl;
    if (!stale && !over_capacity && !expired) break;
    if (!stale) entries_.erase(it);
    completed_order_.pop_front();
  }
  if (expired_waiters == nullptr) return;
  // Sweep dead in-flight entries from the admission-order front. Entries
  // whose slot is stale (completed, erased, or superseded by a newer
  // generation of the same key) are just dropped from the queue; a live
  // not-yet-expired entry stops the sweep — deadlines are approximately
  // admission-ordered, and the same-key purge in AdmitOrAttach catches
  // any straggler exactly when its key is next touched.
  while (!in_flight_order_.empty()) {
    const auto [key, generation] = in_flight_order_.front();
    auto it = entries_.find(key);
    const bool stale = it == entries_.end() || it->second.completed ||
                       it->second.generation != generation;
    if (stale) {
      in_flight_order_.pop_front();
      continue;
    }
    if (!InFlightExpiredLocked(it->second, now)) break;
    for (Waiter& w : it->second.waiters) {
      if (w) expired_waiters->push_back(std::move(w));
    }
    entries_.erase(it);
    in_flight_order_.pop_front();
  }
}

}  // namespace ppgnn
