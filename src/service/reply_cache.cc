#include "service/reply_cache.h"

#include <algorithm>
#include <utility>

namespace ppgnn {

ReplyCache::ReplyCache(const Options& options) : options_(options) {}

ReplyCache::AdmitResult ReplyCache::AdmitOrAttach(uint64_t key,
                                                  Waiter waiter) {
  AdmitResult result;
  std::lock_guard<std::mutex> lock(mu_);
  EvictLocked(Clock::now());
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    entries_.emplace(key, Entry{});
    result.admission = Admission::kPrimary;
    return result;
  }
  if (it->second.completed) {
    result.admission = Admission::kReplayed;
    result.frame = it->second.frame;
    return result;
  }
  it->second.waiters.push_back(std::move(waiter));
  result.admission = Admission::kJoined;
  return result;
}

std::vector<ReplyCache::Waiter> ReplyCache::Complete(
    uint64_t key, const std::vector<uint8_t>& frame, bool cache_for_replay) {
  std::vector<Waiter> waiters;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.completed) return waiters;
  waiters = std::move(it->second.waiters);
  if (cache_for_replay) {
    it->second.completed = true;
    it->second.frame = frame;
    it->second.waiters.clear();
    it->second.completed_at = Clock::now();
    completed_order_.push_back(key);
    EvictLocked(it->second.completed_at);
  } else {
    entries_.erase(it);
  }
  return waiters;
}

std::vector<ReplyCache::Waiter> ReplyCache::Abort(uint64_t key) {
  std::vector<Waiter> waiters;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.completed) return waiters;
  waiters = std::move(it->second.waiters);
  entries_.erase(it);
  return waiters;
}

size_t ReplyCache::CompletedEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_order_.size();
}

void ReplyCache::EvictLocked(Clock::time_point now) {
  const auto ttl = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(std::max(options_.ttl_seconds, 0.0)));
  while (!completed_order_.empty()) {
    const uint64_t key = completed_order_.front();
    auto it = entries_.find(key);
    // A key can linger in completed_order_ after its entry was replaced;
    // only a still-completed entry counts against capacity/TTL.
    const bool stale = it == entries_.end() || !it->second.completed;
    const bool over_capacity = completed_order_.size() > options_.capacity;
    const bool expired =
        !stale && options_.ttl_seconds > 0 && now - it->second.completed_at >= ttl;
    if (!stale && !over_capacity && !expired) break;
    if (!stale) entries_.erase(it);
    completed_order_.pop_front();
  }
}

}  // namespace ppgnn
