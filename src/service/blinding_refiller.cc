#include "service/blinding_refiller.h"

#include <chrono>

namespace ppgnn {

BlindingRefiller::BlindingRefiller(std::shared_ptr<const Encryptor> encryptor,
                                   BlindingRefillerOptions options)
    : encryptor_(std::move(encryptor)),
      options_(std::move(options)),
      // ppgnn-lint: allow(guarded-by): constructor has exclusive access
      rng_(options_.seed) {
  if (options_.start_thread) {
    thread_ = std::thread([this] { Loop(); });
  }
}

BlindingRefiller::~BlindingRefiller() { Stop(); }

Status BlindingRefiller::TopUpOnce() {
  std::lock_guard<std::mutex> work(work_mu_);
  passes_.fetch_add(1, std::memory_order_relaxed);
  Status first_error = Status::OK();
  for (int level : options_.levels) {
    const size_t have = encryptor_->PooledBlindingCount(level);
    if (have >= options_.low_watermark) continue;
    const size_t want = options_.target > have ? options_.target - have : 1;
    // Quota-claimed refill: the encryptor clamps the batch under its pool
    // lock, so two refillers (or a refiller racing manual RefillBlindingPool
    // callers) that both saw the same low watermark cannot jointly push the
    // pool past target. Stats count what actually landed, not what was
    // asked for.
    size_t produced = 0;
    // work_mu_ is a pass-serialization mutex, not a data lock: nothing
    // request-facing ever waits on it, and RefillBlindingPool runs its
    // exponentiations outside the encryptor's own pool lock.
    // ppgnn-lint: allow(blocking-under-lock): work_mu_ only serializes refill passes; no hot-path caller can block on it
    Status status = encryptor_->RefillBlindingPool(level, want, rng_,
                                                   options_.target, &produced);
    refilled_.fetch_add(produced, std::memory_order_relaxed);
    if (!status.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      if (first_error.ok()) first_error = status;
    }
  }
  return first_error;
}

void BlindingRefiller::Loop() {
  const auto interval = std::chrono::duration<double>(
      options_.poll_interval_seconds > 0 ? options_.poll_interval_seconds
                                         : 0.002);
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    lock.unlock();
    // Failures are counted in stats(); the loop keeps going — a refill
    // error (e.g. an injected failpoint) must not kill the offline
    // pipeline for the process lifetime.
    (void)TopUpOnce();
    lock.lock();
    cv_.wait_for(lock, interval, [this] { return stop_; });
  }
}

void BlindingRefiller::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

BlindingRefiller::Stats BlindingRefiller::stats() const {
  Stats stats;
  stats.passes = passes_.load(std::memory_order_relaxed);
  stats.refilled = refilled_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace ppgnn
