// LspService: an in-process, multi-threaded serving front-end over
// LspHandleQuery — the layer that turns the wire-level LSP entry point
// into something shaped like a network daemon.
//
//   * Admission control, in order of cheapness:
//       1. a bounded FIFO request queue (full -> kOverloaded, never
//          unbounded buffering);
//       2. cost-aware shedding: a CostModel prediction from the public
//          wire header (delta', k, key bits — peeked without decoding
//          any ciphertext) is compared against the request's remaining
//          deadline, and a query that cannot finish in time is rejected
//          *before any crypto runs*, with a retry_after_ms hint.
//     Every admission decision reads only public wire metadata — never
//     `// ppgnn: secret` data (the ppgnn-lint secret-flow rule enforces
//     this transitively).
//   * A pool of `workers` threads. The *effective* in-flight bound is an
//     AIMD limiter driven by the execute-stage p99, so the service
//     converges onto the concurrency the current workload mix sustains
//     instead of trusting a static pool size.
//   * Per-request deadlines: propagated from the wire (QueryMessage
//     deadline_ms) or set locally; a monitor thread flips a cooperative
//     cancel flag once a request overruns, and the query pipeline
//     (candidate expansion, sanitize, both selection phases) abandons
//     work at its next checkpoint. Requests that expire while queued —
//     or whose predicted cost no longer fits the remaining budget at
//     dequeue — are answered without executing at all.
//   * Idempotent dedup: a request carrying an idempotency key joins the
//     in-flight original with the same key (one execution, every leg
//     replied) or replays the cached answer frame of a completed one.
//   * Observability: counters, queue-wait / execute / end-to-end latency
//     histograms, and summed QueryInstrumentation via Stats().
//
// Every reply — answer or error — is a wire ResponseFrame, so a client
// can always distinguish "malformed query" / "overloaded" / "deadline
// exceeded" / "internal" from transport garbage.

#ifndef PPGNN_SERVICE_LSP_SERVICE_H_
#define PPGNN_SERVICE_LSP_SERVICE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "core/wire.h"
#include "net/latency.h"
#include "service/admission.h"
#include "service/cost_model.h"
#include "service/link.h"
#include "service/reply_cache.h"

namespace ppgnn {

struct ServiceConfig {
  /// Concurrent whole-query executors (>= 1). This is the thread-pool
  /// size; the AIMD limiter below bounds how many of them may execute
  /// at once.
  int workers = 2;
  /// Maximum queued (not yet executing) requests before reject-on-full.
  size_t queue_capacity = 64;
  /// Time budget applied to requests that don't carry their own;
  /// 0 = unlimited.
  double default_deadline_seconds = 0.0;
  /// Intra-query fan-out passed through to LspHandleQuery.
  int lsp_threads = 1;
  bool sanitize = true;
  TestConfig test_config;

  // --- Overload resilience ---
  /// Predicted-cost-vs-deadline shedding at Submit and again at dequeue.
  /// Only applies to requests that carry a deadline.
  bool cost_admission = true;
  /// Idempotency-key reply coalescing.
  bool enable_dedup = true;
  /// AIMD: execute-stage p99 target and concurrency bounds.
  /// max_concurrency 0 = use `workers`.
  double target_p99_seconds = 0.5;
  int min_concurrency = 1;
  int max_concurrency = 0;
  int aimd_window = 32;
  size_t reply_cache_capacity = 1024;
  double reply_cache_ttl_seconds = 30.0;
  /// How long past its deadline an in-flight dedup entry may linger before
  /// it is presumed abandoned: the key is released to the next retry and
  /// any joined waiters are errored out (kDeadlineExceeded).
  double reply_cache_in_flight_grace_seconds = 1.0;
  /// Test override for the kOverloaded retry_after_ms hint; 0 = computed
  /// from the backlog and the observed mean execute time.
  uint64_t retry_after_hint_ms = 0;
  /// Shared cost model (e.g. one model across a fleet of services in a
  /// simulation); null = the service owns a private one.
  std::shared_ptr<CostModel> cost_model;
  /// Client-side Encryptor observed for observability only (the harness
  /// that owns both the service and its load generator — ppgnn_cli
  /// --serve, benches — wires it in): Stats() snapshots its blinding
  /// pool/table counters next to the server-side numbers. Null = the
  /// blinding fields in ServiceStats stay zero (registry-wide table
  /// stats are still reported).
  std::shared_ptr<const Encryptor> observed_encryptor;

  /// Test-only: runs on the worker thread right before query execution.
  /// Lets tests hold workers on a latch to force queue-full and
  /// deadline-expiry deterministically. Never set in production paths.
  std::function<void()> test_execute_hook;
};

struct ServiceRequest {
  std::vector<uint8_t> query;                   ///< QueryMessage bytes
  std::vector<std::vector<uint8_t>> uploads;    ///< LocationSetMessage bytes
  /// Per-request budget from admission to reply; 0 = use the config
  /// default. The effective budget is the tighter of this and the wire
  /// deadline_ms carried inside `query`, when either is set.
  double deadline_seconds = 0.0;
  /// Dedup key; 0 = fall back to the wire idempotency_key inside
  /// `query`, which may itself be 0 (dedup disabled for this request).
  uint64_t idempotency_key = 0;
  /// Users whose uploads are coordinator-substituted dummy sets (dropout
  /// degradation). Carried for observability; the wire shape is unchanged.
  uint32_t degraded_users = 0;
};

/// Counter snapshot. accepted == served + failed + deadline_expired +
/// (still queued or executing); rejected requests are never accepted,
/// and dedup joins/replays are answered without being accepted.
struct ServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t deadline_expired = 0;
  size_t queue_depth = 0;
  /// Cost-based Submit-time rejections (a subset of `rejected`).
  uint64_t shed = 0;
  /// deadline_expired split: answered without any crypto vs. cancelled
  /// mid-execution. expired_in_queue + abandoned_executing ==
  /// deadline_expired.
  uint64_t expired_in_queue = 0;
  uint64_t abandoned_executing = 0;
  /// Idempotency-key coalescing.
  uint64_t dedup_joins = 0;
  uint64_t dedup_replays = 0;
  /// Joined waiters errored out because their primary was presumed dead
  /// (in-flight entry purged past deadline + grace).
  uint64_t dedup_purged = 0;
  /// Scatter-gather fan-outs that completed with at least one shard
  /// missing (merged degraded instead of failing the query). Zero on a
  /// plain single-node service; ShardedLspService fills it in.
  uint64_t degraded_shards = 0;
  /// Adaptive concurrency.
  int concurrency_limit = 0;
  uint64_t aimd_increases = 0;
  uint64_t aimd_decreases = 0;
  uint64_t cost_observations = 0;
  /// Client-side resilience events, reported back by ResilientClient (or
  /// anything else wrapping this service) via the Record* methods.
  uint64_t retries = 0;
  uint64_t hedges = 0;
  /// Served queries whose request carried degraded (substituted) users.
  uint64_t degraded_queries = 0;
  /// Offline blinding pipeline, snapshotted from the observed client
  /// Encryptor (see ServiceConfig::observed_encryptor; zero when unset).
  uint64_t blinding_pool_hits = 0;    ///< Encrypts served from the pool
  uint64_t blinding_pool_misses = 0;  ///< Encrypts that blinded online
  uint64_t blinding_refilled = 0;     ///< factors produced offline
  uint64_t blinding_pooled = 0;       ///< currently pooled factors
  /// Process-wide shared fixed-base table registry (bigint/fixedbase.h);
  /// reported regardless of observed_encryptor.
  uint64_t fixed_base_engines = 0;
  uint64_t fixed_base_table_bytes = 0;
  /// Resilience ladder of the replicated cluster (zero on plain
  /// services; ShardedLspService fills these in).
  /// Fan-outs where at least one replica leg failed over, hedged, or
  /// retried and the merged answer still covered every routed shard —
  /// the exact-despite-failures counterpart of `degraded_shards`.
  uint64_t exact_despite_failures = 0;
  uint64_t replica_failovers = 0;   ///< answers served by a failover leg
  uint64_t replica_hedge_wins = 0;  ///< answers served by a hedge leg
  uint64_t health_transitions = 0;  ///< replica health-state transitions
  /// Queued requests flushed with kShuttingDown when a bounded drain
  /// (Shutdown with a deadline) ran out of time.
  uint64_t drain_flushed = 0;
  /// Per-replica ladder counters (replicated cluster only).
  struct ReplicaRow {
    int shard = 0;
    int replica = 0;
    int health = 0;  ///< ReplicaHealth, as int to keep this header light
    uint64_t served = 0;
    uint64_t failed_over = 0;
    uint64_t hedge_won = 0;
    uint64_t transitions = 0;
  };
  std::vector<ReplicaRow> replicas;
  /// Error replies sent, indexed by WireError (kMalformed..kShuttingDown).
  std::array<uint64_t, kWireErrorCount> error_replies{};
  LatencySummary latency;      ///< admission -> reply, all outcomes
  LatencySummary queue_wait;   ///< admission -> dequeue, executed or expired
  LatencySummary execute;      ///< dequeue -> finish, executed requests only
  QueryInstrumentation totals; ///< summed over served queries

  std::string ToString() const;
};

class LspService : public ServiceLink {
 public:
  using Clock = std::chrono::steady_clock;

  /// Invoked exactly once per submitted request with the encoded
  /// ResponseFrame. May run on a worker thread, or inline in Submit for
  /// rejected/replayed requests. Must not re-enter the service.
  using Callback = ServiceLink::Callback;

  /// Execution context handed to a Handler on the worker thread.
  struct HandlerContext {
    /// Absolute deadline (time_point::max() = none) — a handler that fans
    /// out further (the shard coordinator) derives downstream budgets
    /// from it.
    Clock::time_point deadline = Clock::time_point::max();
    /// Cooperative cancel flag flipped by the deadline monitor; null when
    /// the request carries no deadline.
    const std::atomic<bool>* cancel = nullptr;
    /// Per-query instrumentation sink; never null.
    QueryInstrumentation* info = nullptr;
  };

  /// The execution strategy behind the admission/queue/deadline front-end:
  /// maps a request to raw AnswerMessage (or ShardAnswerMessage) bytes.
  /// The default handler dispatches on the wire shape — ShardQueryMessage
  /// bytes run the plaintext shard path, everything else the full
  /// LspHandleQuery pipeline. The shard coordinator installs its own
  /// handler that scatter-gathers over a cluster instead.
  using Handler = std::function<Result<std::vector<uint8_t>>(
      const ServiceRequest&, const HandlerContext&)>;

  /// Starts the worker pool and deadline monitor over the default
  /// database handler. The database must outlive the service.
  LspService(const LspDatabase& db, ServiceConfig config);
  /// Same front-end over a custom execution handler (must be non-null;
  /// anything it references must outlive the service).
  LspService(Handler handler, ServiceConfig config);
  ~LspService() override;

  LspService(const LspService&) = delete;
  LspService& operator=(const LspService&) = delete;

  /// Non-blocking admission. Returns true if the request was queued,
  /// joined an in-flight duplicate, or was answered from the reply
  /// cache; on false (queue full, shed, or shutting down) the callback
  /// has already been invoked inline with a kOverloaded error frame.
  [[nodiscard]] bool Submit(ServiceRequest request, Callback done) override;

  /// Blocking convenience wrapper: submits and waits for the reply frame.
  std::vector<uint8_t> Call(ServiceRequest request);

  ServiceStats Stats() const;

  /// Resilience-event hooks: a retrying/hedging client calls these so its
  /// recovery activity shows up in the same Stats() snapshot as the
  /// server-side counters it caused.
  void RecordClientRetry() override {
    retries_.fetch_add(1, std::memory_order_relaxed);
  }
  void RecordClientHedge() override {
    hedges_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Stops admission (new submissions get a structured kShuttingDown
  /// frame with a retry_after_ms hint), drains queued and executing
  /// requests, then joins all threads. With a positive
  /// `drain_deadline_seconds` the drain is bounded: requests still
  /// queued when it elapses are flushed with kShuttingDown frames
  /// instead of executing, so every accepted request is still answered
  /// exactly once (accepted + rejected == submitted, across the drain).
  /// 0 = unbounded drain (execute everything queued). Idempotent; the
  /// destructor calls it.
  void Shutdown(double drain_deadline_seconds = 0.0);

 private:
  struct PendingRequest {
    ServiceRequest request;
    Callback done;
    Clock::time_point admitted;
    Clock::time_point deadline;  // time_point::max() = none
    CostFeatures features;
    bool has_features = false;
    uint64_t cache_key = 0;  // nonzero = this request is a dedup primary
    // In-flight generation returned at admission; Complete/Abort must
    // echo it so a purged-and-readmitted key ignores this stale primary.
    uint64_t cache_generation = 0;
  };

  /// A request currently executing on some worker, visible to the
  /// deadline monitor.
  struct InFlight {
    Clock::time_point deadline;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  void WorkerLoop();
  void MonitorLoop();
  /// Executes (or expires) one dequeued request and replies on all legs.
  void ProcessRequest(PendingRequest& req);
  void Reply(PendingRequest& req, std::vector<uint8_t> frame);
  /// Distributes `frame` to the request's own leg and, when it is a
  /// dedup primary, to every joined duplicate; answers (cache_for_replay)
  /// stay cached for later replays.
  void Finish(PendingRequest& req, std::vector<uint8_t> frame,
              bool cache_for_replay);
  /// One delivery leg: applies the transport failpoint, records
  /// end-to-end latency, invokes the callback. Joined duplicates are
  /// stored in the reply cache as legs so every duplicate gets the same
  /// (pre-corruption) frame through the same path as the primary.
  Callback MakeLeg(Clock::time_point admitted, Callback done);
  /// Builds an error frame and bumps the per-code reply counter.
  std::vector<uint8_t> MakeErrorFrame(WireError code, std::string detail,
                                      uint64_t retry_after_ms = 0);
  /// Backpressure hint for kOverloaded replies: config override, or an
  /// estimate of how long the current backlog needs to drain (plus
  /// `extra_seconds`, e.g. how far a shed request's cost overshot its
  /// budget).
  uint64_t RetryAfterHintMs(double extra_seconds);
  /// Rejects a registered dedup primary: aborts the cache entry and
  /// errors out any waiters that joined in the meantime.
  void AbortPrimary(uint64_t cache_key, uint64_t cache_generation,
                    const std::vector<uint8_t>& frame);

  Handler handler_;
  const ServiceConfig config_;
  std::shared_ptr<CostModel> cost_model_;
  AimdLimiter limiter_;
  ReplyCache reply_cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  // ppgnn: guarded_by(queue_, mu_)
  std::deque<PendingRequest> queue_;
  // ppgnn: guarded_by(executing_, mu_)
  int executing_ = 0;
  // ppgnn: guarded_by(stopping_, mu_)
  bool stopping_ = false;

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  // ppgnn: guarded_by(inflight_, inflight_mu_)
  std::vector<std::shared_ptr<InFlight>> inflight_;
  // ppgnn: guarded_by(monitor_stop_, inflight_mu_)
  bool monitor_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread monitor_;

  // Monotonic stats counters, read only by Stats(); relaxed ordering is
  // deliberate and sanctioned here (and only here).
  // ppgnn: stat_counter(accepted_, rejected_, served_, failed_)
  // ppgnn: stat_counter(deadline_expired_, shed_, expired_in_queue_)
  // ppgnn: stat_counter(abandoned_executing_, dedup_joins_, dedup_replays_)
  // ppgnn: stat_counter(dedup_purged_, retries_, hedges_)
  // ppgnn: stat_counter(degraded_queries_, drain_flushed_, error_replies_)
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> expired_in_queue_{0};
  std::atomic<uint64_t> abandoned_executing_{0};
  std::atomic<uint64_t> dedup_joins_{0};
  std::atomic<uint64_t> dedup_replays_{0};
  std::atomic<uint64_t> dedup_purged_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> degraded_queries_{0};
  std::atomic<uint64_t> drain_flushed_{0};
  std::array<std::atomic<uint64_t>, kWireErrorCount> error_replies_{};
  LatencyHistogram latency_;
  LatencyHistogram queue_wait_;
  LatencyHistogram execute_;
  mutable std::mutex totals_mu_;
  // ppgnn: guarded_by(totals_, totals_mu_)
  QueryInstrumentation totals_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_LSP_SERVICE_H_
