// LspService: an in-process, multi-threaded serving front-end over
// LspHandleQuery — the layer that turns the wire-level LSP entry point
// into something shaped like a network daemon.
//
//   * Admission control: a bounded FIFO request queue. A full queue
//     rejects immediately with a structured kOverloaded error frame
//     (backpressure, never unbounded buffering).
//   * A pool of `workers` threads, each executing whole queries
//     concurrently. This inter-query parallelism is orthogonal to the
//     intra-query `lsp_threads` fan-out inside LspHandleQuery; both can
//     be combined.
//   * Per-request deadlines: a monitor thread flips a cooperative cancel
//     flag once a request overruns its budget, and LspHandleQuery
//     abandons the query between candidates. Requests that expire while
//     still queued are answered without being executed at all. Either
//     way the client gets a kDeadlineExceeded error frame.
//   * Observability: atomic accepted/rejected/served/failed/expired
//     counters, an end-to-end latency histogram (admission -> reply), and
//     the summed QueryInstrumentation of every served query, snapshotted
//     via Stats().
//
// Every reply — answer or error — is a wire ResponseFrame, so a client
// can always distinguish "malformed query" / "overloaded" / "deadline
// exceeded" / "internal" from transport garbage.

#ifndef PPGNN_SERVICE_LSP_SERVICE_H_
#define PPGNN_SERVICE_LSP_SERVICE_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/protocol.h"
#include "core/wire.h"
#include "net/latency.h"

namespace ppgnn {

struct ServiceConfig {
  /// Concurrent whole-query executors (>= 1).
  int workers = 2;
  /// Maximum queued (not yet executing) requests before reject-on-full.
  size_t queue_capacity = 64;
  /// Time budget applied to requests that don't carry their own;
  /// 0 = unlimited.
  double default_deadline_seconds = 0.0;
  /// Intra-query fan-out passed through to LspHandleQuery.
  int lsp_threads = 1;
  bool sanitize = true;
  TestConfig test_config;
  /// Test-only: runs on the worker thread right before query execution.
  /// Lets tests hold workers on a latch to force queue-full and
  /// deadline-expiry deterministically. Never set in production paths.
  std::function<void()> test_execute_hook;
};

struct ServiceRequest {
  std::vector<uint8_t> query;                   ///< QueryMessage bytes
  std::vector<std::vector<uint8_t>> uploads;    ///< LocationSetMessage bytes
  /// Per-request budget from admission to reply; 0 = use the config
  /// default.
  double deadline_seconds = 0.0;
  /// Users whose uploads are coordinator-substituted dummy sets (dropout
  /// degradation). Carried for observability; the wire shape is unchanged.
  uint32_t degraded_users = 0;
};

/// Counter snapshot. accepted == served + failed + deadline_expired +
/// (still queued or executing); rejected requests are never accepted.
struct ServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected = 0;
  uint64_t served = 0;
  uint64_t failed = 0;
  uint64_t deadline_expired = 0;
  size_t queue_depth = 0;
  /// Client-side resilience events, reported back by ResilientClient (or
  /// anything else wrapping this service) via the Record* methods.
  uint64_t retries = 0;
  uint64_t hedges = 0;
  /// Served queries whose request carried degraded (substituted) users.
  uint64_t degraded_queries = 0;
  /// Error replies sent, indexed by WireError (kMalformed..kInternal).
  std::array<uint64_t, 4> error_replies{};
  LatencySummary latency;        ///< admission -> reply, all outcomes
  QueryInstrumentation totals;   ///< summed over served queries

  std::string ToString() const;
};

class LspService {
 public:
  /// Invoked exactly once per submitted request with the encoded
  /// ResponseFrame. May run on a worker thread, or inline in Submit for
  /// rejected requests. Must not re-enter the service.
  using Callback = std::function<void(std::vector<uint8_t>)>;

  /// Starts the worker pool and deadline monitor. The database must
  /// outlive the service.
  LspService(const LspDatabase& db, ServiceConfig config);
  ~LspService();

  LspService(const LspService&) = delete;
  LspService& operator=(const LspService&) = delete;

  /// Non-blocking admission. Returns true if the request was queued; on
  /// false (queue full or shutting down) the callback has already been
  /// invoked inline with a kOverloaded error frame.
  [[nodiscard]] bool Submit(ServiceRequest request, Callback done);

  /// Blocking convenience wrapper: submits and waits for the reply frame.
  std::vector<uint8_t> Call(ServiceRequest request);

  ServiceStats Stats() const;

  /// Resilience-event hooks: a retrying/hedging client calls these so its
  /// recovery activity shows up in the same Stats() snapshot as the
  /// server-side counters it caused.
  void RecordClientRetry() { retries_.fetch_add(1, std::memory_order_relaxed); }
  void RecordClientHedge() { hedges_.fetch_add(1, std::memory_order_relaxed); }

  /// Stops admission, drains the queue, joins all threads. Idempotent;
  /// the destructor calls it.
  void Shutdown();

 private:
  using Clock = std::chrono::steady_clock;

  struct PendingRequest {
    ServiceRequest request;
    Callback done;
    Clock::time_point admitted;
    Clock::time_point deadline;  // time_point::max() = none
  };

  /// A request currently executing on some worker, visible to the
  /// deadline monitor.
  struct InFlight {
    Clock::time_point deadline;
    std::shared_ptr<std::atomic<bool>> cancel;
  };

  void WorkerLoop();
  void MonitorLoop();
  void Reply(PendingRequest& req, std::vector<uint8_t> frame);
  /// Builds an error frame and bumps the per-code reply counter.
  std::vector<uint8_t> MakeErrorFrame(WireError code, std::string detail);

  const LspDatabase& db_;
  const ServiceConfig config_;

  mutable std::mutex mu_;  // guards queue_ and stopping_
  std::condition_variable queue_cv_;
  std::deque<PendingRequest> queue_;
  bool stopping_ = false;

  std::mutex inflight_mu_;  // guards inflight_ and monitor_stop_
  std::condition_variable inflight_cv_;
  std::vector<std::shared_ptr<InFlight>> inflight_;
  bool monitor_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread monitor_;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<uint64_t> served_{0};
  std::atomic<uint64_t> failed_{0};
  std::atomic<uint64_t> deadline_expired_{0};
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> hedges_{0};
  std::atomic<uint64_t> degraded_queries_{0};
  std::array<std::atomic<uint64_t>, 4> error_replies_{};
  LatencyHistogram latency_;
  mutable std::mutex totals_mu_;
  QueryInstrumentation totals_;
};

}  // namespace ppgnn

#endif  // PPGNN_SERVICE_LSP_SERVICE_H_
