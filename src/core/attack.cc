#include "core/attack.h"

#include <algorithm>
#include <limits>

namespace ppgnn {

InequalityAttack::InequalityAttack(std::vector<Point> colluders,
                                   std::vector<Point> ranked_answer,
                                   AggregateKind kind, Rect space,
                                   const DistanceOracle* oracle)
    : ranked_answer_(std::move(ranked_answer)),
      kind_(kind),
      space_(space),
      has_colluders_(!colluders.empty()),
      oracle_(oracle) {
  partial_.reserve(ranked_answer_.size());
  for (const Point& poi : ranked_answer_) {
    double acc = 0.0;
    if (has_colluders_) {
      switch (kind_) {
        case AggregateKind::kSum: {
          acc = 0.0;
          for (const Point& c : colluders) acc += Dis(poi, c);
          break;
        }
        case AggregateKind::kMax: {
          acc = 0.0;
          for (const Point& c : colluders) acc = std::max(acc, Dis(poi, c));
          break;
        }
        case AggregateKind::kMin: {
          acc = std::numeric_limits<double>::infinity();
          for (const Point& c : colluders) acc = std::min(acc, Dis(poi, c));
          break;
        }
      }
    }
    partial_.push_back(acc);
  }
}

double InequalityAttack::Dis(const Point& a, const Point& b) const {
  return oracle_ != nullptr ? oracle_->Distance(a, b) : Distance(a, b);
}

bool InequalityAttack::Satisfies(const Point& candidate) const {
  if (ranked_answer_.size() < 2) return true;
  auto full_cost = [&](size_t i) {
    double target_dist = Dis(ranked_answer_[i], candidate);
    if (!has_colluders_) return target_dist;
    switch (kind_) {
      case AggregateKind::kSum:
        return partial_[i] + target_dist;
      case AggregateKind::kMax:
        return std::max(partial_[i], target_dist);
      case AggregateKind::kMin:
        return std::min(partial_[i], target_dist);
    }
    return target_dist;
  };
  double prev = full_cost(0);
  for (size_t i = 1; i < ranked_answer_.size(); ++i) {
    double cur = full_cost(i);
    if (prev > cur) return false;
    prev = cur;
  }
  return true;
}

Point InequalityAttack::SamplePoint(Rng& rng) const {
  return {space_.min_x + rng.NextDouble() * space_.Width(),
          space_.min_y + rng.NextDouble() * space_.Height()};
}

double InequalityAttack::EstimateRegionFraction(Rng& rng,
                                                uint64_t samples) const {
  if (samples == 0) return 0.0;
  uint64_t hits = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    if (Satisfies(SamplePoint(rng))) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(samples);
}

}  // namespace ppgnn
