#include "core/selection.h"

#include <algorithm>
#include <thread>

#include "net/cost.h"

namespace ppgnn {
namespace {

/// Runs `task(worker_index)` on `workers` threads (worker 0 on the
/// calling thread) and accumulates the spawned workers' CPU seconds.
template <typename Task>
void FanOut(int workers, double* worker_seconds, Task&& task) {
  if (workers <= 1) {
    task(0);
    return;
  }
  std::vector<double> cpu(workers, 0.0);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers - 1));
  for (int w = 1; w < workers; ++w) {
    pool.emplace_back([&task, &cpu, w] {
      double t0 = ThreadCpuSeconds();
      task(w);
      cpu[w] = ThreadCpuSeconds() - t0;
    });
  }
  task(0);
  for (std::thread& t : pool) t.join();
  if (worker_seconds != nullptr) {
    for (int w = 1; w < workers; ++w) *worker_seconds += cpu[w];
  }
}

bool Cancelled(const std::atomic<bool>* cancel) {
  return cancel != nullptr && cancel->load(std::memory_order_acquire);
}

Status CancelledStatus() {
  return Status::DeadlineExceeded("selection abandoned past deadline");
}

}  // namespace

Status AnswerMatrix::Validate() const {
  if (columns.empty())
    return Status::InvalidArgument("answer matrix has no columns");
  const size_t rows = columns[0].size();
  if (rows == 0) return Status::InvalidArgument("answer matrix has no rows");
  for (const auto& col : columns) {
    if (col.size() != rows)
      return Status::InvalidArgument("ragged answer matrix");
  }
  return Status::OK();
}

Result<std::vector<Ciphertext>> PrivateSelect(
    const Encryptor& enc, const AnswerMatrix& matrix,
    const std::vector<Ciphertext>& indicator, int threads,
    double* worker_seconds, const std::atomic<bool>* cancel) {
  PPGNN_RETURN_IF_ERROR(matrix.Validate());
  if (indicator.size() != matrix.Cols())
    return Status::InvalidArgument(
        "indicator length != number of candidate answers");
  const size_t rows = matrix.Rows();
  const size_t cols = matrix.Cols();
  const int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(threads, 1)), cols));

  // partial[w][r]: dot product of worker w's column chunk for row r.
  std::vector<std::vector<Result<Ciphertext>>> partial(
      workers,
      std::vector<Result<Ciphertext>>(rows, Status::Internal("unset")));
  const size_t chunk = (cols + workers - 1) / static_cast<size_t>(workers);

  FanOut(workers, worker_seconds, [&](int w) {
    const size_t begin = std::min(static_cast<size_t>(w) * chunk, cols);
    const size_t end = std::min(begin + chunk, cols);
    if (begin == end) {
      // Uneven split can leave trailing workers without columns; they
      // contribute the additive identity.
      for (size_t r = 0; r < rows; ++r) {
        partial[w][r] = enc.Zero(indicator[0].level);
      }
      return;
    }
    // One multi-exp engine per column chunk: the window tables over
    // [v_begin..v_end) are built once and reused by all m rows.
    std::vector<Ciphertext> ind_chunk(indicator.begin() + begin,
                                      indicator.begin() + end);
    Result<Encryptor::DotEngine> engine_or = enc.MakeDotEngine(ind_chunk);
    if (!engine_or.ok()) {
      for (size_t r = 0; r < rows; ++r) partial[w][r] = engine_or.status();
      return;
    }
    const Encryptor::DotEngine engine = std::move(engine_or).value();
    std::vector<BigInt> row_chunk(end - begin);
    for (size_t r = 0; r < rows; ++r) {
      if (Cancelled(cancel)) {
        partial[w][r] = CancelledStatus();
        break;
      }
      for (size_t c = begin; c < end; ++c) {
        row_chunk[c - begin] = matrix.columns[c][r];
      }
      partial[w][r] = engine.Dot(row_chunk);
    }
  });

  std::vector<Ciphertext> out;
  out.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    PPGNN_ASSIGN_OR_RETURN(Ciphertext acc, std::move(partial[0][r]));
    for (int w = 1; w < workers; ++w) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext part, std::move(partial[w][r]));
      PPGNN_ASSIGN_OR_RETURN(acc, enc.Add(acc, part));
    }
    out.push_back(std::move(acc));
  }
  return out;
}

Result<std::vector<Ciphertext>> PrivateSelectTwoPhase(
    const Encryptor& enc, const AnswerMatrix& matrix,
    const OptIndicator& indicator, int threads, double* worker_seconds,
    const std::atomic<bool>* cancel) {
  PPGNN_RETURN_IF_ERROR(matrix.Validate());
  const uint64_t omega = indicator.omega;
  const uint64_t block_size = indicator.block_size;
  if (indicator.v1.size() != block_size || indicator.v2.size() != omega)
    return Status::InvalidArgument("inconsistent OptIndicator shape");
  if (omega * block_size < matrix.Cols())
    return Status::InvalidArgument(
        "OptIndicator covers fewer columns than the answer matrix");
  const size_t rows = matrix.Rows();

  // Phase 1: per block b, select within the block using [v1]. Blocks that
  // run past delta' are implicitly zero-padded: missing columns simply
  // contribute nothing to the dot product. Blocks are independent, so
  // they fan out across workers.
  std::vector<std::vector<Result<Ciphertext>>> phase1(
      omega, std::vector<Result<Ciphertext>>(rows, Status::Internal("unset")));
  const int workers = static_cast<int>(std::min<uint64_t>(
      static_cast<uint64_t>(std::max(threads, 1)), omega));

  // Every block dots against the same [v1], so one engine (window tables
  // in the Montgomery domain) is built up front and shared read-only by
  // all workers: Dot() is const and thread-safe.
  PPGNN_ASSIGN_OR_RETURN(Encryptor::DotEngine v1_engine,
                         enc.MakeDotEngine(indicator.v1));

  FanOut(workers, worker_seconds, [&](int w) {
    std::vector<BigInt> row(block_size);
    for (uint64_t b = static_cast<uint64_t>(w); b < omega;
         b += static_cast<uint64_t>(workers)) {
      const size_t col_begin = static_cast<size_t>(b * block_size);
      for (size_t r = 0; r < rows; ++r) {
        if (Cancelled(cancel)) {
          phase1[b][r] = CancelledStatus();
          break;
        }
        for (uint64_t i = 0; i < block_size; ++i) {
          size_t c = col_begin + static_cast<size_t>(i);
          row[i] = c < matrix.Cols() ? matrix.columns[c][r] : BigInt(0);
        }
        phase1[b][r] = v1_engine.Dot(row);
      }
    }
  });

  // Phase 2: select the block with [[v2]], treating the eps_1 ciphertext
  // values as eps_2 plaintexts. One engine over [[v2]] serves all m rows;
  // the scalars here are full 2*keysize-bit values, which is where the
  // shared square chain of the multi-exponentiation pays off most.
  PPGNN_ASSIGN_OR_RETURN(Encryptor::DotEngine v2_engine,
                         enc.MakeDotEngine(indicator.v2));
  std::vector<Ciphertext> out;
  out.reserve(rows);
  std::vector<BigInt> scalars(omega);
  for (size_t r = 0; r < rows; ++r) {
    if (Cancelled(cancel)) return CancelledStatus();
    for (uint64_t b = 0; b < omega; ++b) {
      PPGNN_RETURN_IF_ERROR(phase1[b][r].status());
      scalars[b] = phase1[b][r].value().value;
    }
    PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, v2_engine.Dot(scalars));
    out.push_back(std::move(ct));
  }
  return out;
}

}  // namespace ppgnn
