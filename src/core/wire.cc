#include "core/wire.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <unordered_set>

#include "common/failpoint.h"
#include "crypto/poi_codec.h"

namespace ppgnn {
namespace {

constexpr uint8_t kIndicatorPlain = 0;
constexpr uint8_t kIndicatorOpt = 1;

/// Leading byte of shard-link messages. A QueryMessage's first varint is
/// k >= 1 and an AnswerMessage's first varint is its count >= 1, so 0x00
/// is unreachable as the first byte of either — one endpoint can carry
/// both the encrypted protocol and the plaintext shard fan-out.
constexpr uint8_t kShardMagic = 0x00;

constexpr uint8_t kFrameAnswer = 0;
constexpr uint8_t kFrameError = 1;
// Frame header: 1 tag byte + 4 CRC bytes.
constexpr size_t kFrameHeaderBytes = 5;

/// CRC32 (IEEE 802.3 polynomial) of the frame payload. Integrity only —
/// an *adversarial* LSP can forge it trivially; it exists so random
/// transit corruption is a clean decode error instead of garbage POIs.
uint32_t Crc32(const uint8_t* data, size_t len) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> WrapFrame(uint8_t tag, const uint8_t* payload,
                               size_t len) {
  std::vector<uint8_t> out;
  out.reserve(len + kFrameHeaderBytes);
  out.push_back(tag);
  const uint32_t crc = Crc32(payload, len);
  out.push_back(static_cast<uint8_t>(crc));
  out.push_back(static_cast<uint8_t>(crc >> 8));
  out.push_back(static_cast<uint8_t>(crc >> 16));
  out.push_back(static_cast<uint8_t>(crc >> 24));
  out.insert(out.end(), payload, payload + len);
  return out;
}

Status AppendCiphertext(ByteWriter& w, const Ciphertext& ct,
                        const PublicKey& pk) {
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                         ct.value.ToBytesPadded(ct.ByteSize(pk)));
  w.PutBytes(bytes);
  return Status::OK();
}

Result<Ciphertext> ReadCiphertext(ByteReader& r, const PublicKey& pk,
                                  int level) {
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, r.GetBytes());
  if (bytes.size() != pk.CiphertextBytes(level))
    return Status::InvalidArgument("ciphertext width mismatch on wire");
  Ciphertext ct;
  ct.value = BigInt::FromBytes(bytes);
  ct.level = level;
  return ct;
}

void WritePoint(ByteWriter& w, const Point& p) {
  w.PutU32(QuantizeCoord(p.x));
  w.PutU32(QuantizeCoord(p.y));
}

Result<Point> ReadPoint(ByteReader& r) {
  PPGNN_ASSIGN_OR_RETURN(uint32_t x, r.GetU32());
  PPGNN_ASSIGN_OR_RETURN(uint32_t y, r.GetU32());
  return Point{DequantizeCoord(x), DequantizeCoord(y)};
}

/// delta' = sum_i d_bar[i]^alpha, with every multiply and add checked
/// against kMaxWireDeltaPrime. Wrapping arithmetic here was exploitable:
/// alpha can be large and d_bar is attacker-controlled, so an unchecked
/// product can wrap delta' small enough to match a short indicator while
/// the true candidate enumeration is astronomically large.
Result<uint64_t> CheckedPlanDeltaPrime(const PartitionPlan& plan) {
  uint64_t total = 0;
  for (int db : plan.d_bar) {
    const uint64_t base = static_cast<uint64_t>(db);
    uint64_t term = 1;
    for (int i = 0; i < plan.alpha; ++i) {
      if (base != 0 && term > kMaxWireDeltaPrime / base)
        return Status::InvalidArgument("wire: delta' exceeds hard ceiling");
      term *= base;
    }
    if (total > kMaxWireDeltaPrime - term)
      return Status::InvalidArgument("wire: delta' exceeds hard ceiling");
    total += term;
  }
  return total;
}

/// Marks the start of the optional deadline/idempotency trailer. A
/// version-1 frame ends right after the indicator; the tag keeps a
/// truncated-or-corrupted trailer from silently parsing as absent.
constexpr uint8_t kQueryTrailerTag = 0x51;

/// Reads the optional trailer at the current position. AtEnd means a
/// version-1 frame: both fields stay zero.
Status ReadQueryTrailer(ByteReader& r, uint64_t* deadline_ms,
                        uint64_t* idempotency_key) {
  if (r.AtEnd()) return Status::OK();
  PPGNN_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  if (tag != kQueryTrailerTag)
    return Status::InvalidArgument("wire: unknown query trailer tag");
  PPGNN_ASSIGN_OR_RETURN(*deadline_ms, r.GetVarint());
  if (*deadline_ms > kMaxWireMillis)
    return Status::InvalidArgument("wire: deadline_ms out of range");
  PPGNN_ASSIGN_OR_RETURN(*idempotency_key, r.GetU64());
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return Status::OK();
}

}  // namespace

Result<std::vector<uint8_t>> QueryMessage::Encode() const {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.query.encode"));
  ByteWriter w;
  w.PutVarint(static_cast<uint64_t>(k));
  w.PutDouble(theta0);
  w.PutU8(static_cast<uint8_t>(aggregate));
  w.PutVarint(static_cast<uint64_t>(plan.alpha));
  for (int nb : plan.n_bar) w.PutVarint(static_cast<uint64_t>(nb));
  w.PutVarint(static_cast<uint64_t>(plan.beta()));
  for (int db : plan.d_bar) w.PutVarint(static_cast<uint64_t>(db));
  // key_bits travels explicitly: reconstructing it from the modulus byte
  // count over-reports by up to 7 bits whenever key_bits is not a multiple
  // of 8, which desynchronizes CostModel bucketing across shard hops.
  if (static_cast<uint64_t>(pk.key_bits) < kMinWireKeyBits ||
      static_cast<uint64_t>(pk.key_bits) > kMaxWireKeyBits) {
    return Status::InvalidArgument("wire: key_bits out of range");
  }
  w.PutVarint(static_cast<uint64_t>(pk.key_bits));
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> pk_bytes,
                         pk.n.ToBytesPadded(pk.ByteSize()));
  w.PutBytes(pk_bytes);
  if (is_opt) {
    w.PutU8(kIndicatorOpt);
    w.PutVarint(opt_indicator.omega);
    w.PutVarint(opt_indicator.block_size);
    for (const Ciphertext& ct : opt_indicator.v1) {
      PPGNN_RETURN_IF_ERROR(AppendCiphertext(w, ct, pk));
    }
    for (const Ciphertext& ct : opt_indicator.v2) {
      PPGNN_RETURN_IF_ERROR(AppendCiphertext(w, ct, pk));
    }
  } else {
    w.PutU8(kIndicatorPlain);
    w.PutVarint(indicator.size());
    for (const Ciphertext& ct : indicator) {
      PPGNN_RETURN_IF_ERROR(AppendCiphertext(w, ct, pk));
    }
  }
  if (deadline_ms != 0 || idempotency_key != 0) {
    if (deadline_ms > kMaxWireMillis)
      return Status::InvalidArgument("wire: deadline_ms out of range");
    w.PutU8(kQueryTrailerTag);
    w.PutVarint(deadline_ms);
    w.PutU64(idempotency_key);
  }
  return w.Release();
}

Result<QueryMessage> QueryMessage::Decode(const std::vector<uint8_t>& bytes) {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.query.decode"));
  ByteReader r(bytes);
  QueryMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint64_t k64, r.GetVarint());
  if (k64 < 1 || k64 > kMaxWireK)
    return Status::InvalidArgument("wire: k out of range");
  msg.k = static_cast<int>(k64);
  PPGNN_ASSIGN_OR_RETURN(msg.theta0, r.GetDouble());
  PPGNN_ASSIGN_OR_RETURN(uint8_t agg, r.GetU8());
  if (agg > static_cast<uint8_t>(AggregateKind::kMin))
    return Status::InvalidArgument("wire: bad aggregate kind");
  msg.aggregate = static_cast<AggregateKind>(agg);

  PPGNN_ASSIGN_OR_RETURN(uint64_t alpha, r.GetVarint());
  if (alpha < 1 || alpha > 4096)
    return Status::InvalidArgument("wire: bad alpha");
  msg.plan.alpha = static_cast<int>(alpha);
  for (uint64_t j = 0; j < alpha; ++j) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t nb, r.GetVarint());
    if (nb < 1 || nb > kMaxWireSubgroupSize)
      return Status::InvalidArgument("wire: subgroup size out of range");
    msg.plan.n_bar.push_back(static_cast<int>(nb));
  }
  PPGNN_ASSIGN_OR_RETURN(uint64_t beta, r.GetVarint());
  if (beta < 1 || beta > 1 << 20)
    return Status::InvalidArgument("wire: bad beta");
  for (uint64_t i = 0; i < beta; ++i) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t db, r.GetVarint());
    if (db < 1 || db > kMaxWireSegmentSize)
      return Status::InvalidArgument("wire: segment size out of range");
    msg.plan.d_bar.push_back(static_cast<int>(db));
  }
  PPGNN_ASSIGN_OR_RETURN(msg.plan.delta_prime,
                         CheckedPlanDeltaPrime(msg.plan));

  PPGNN_ASSIGN_OR_RETURN(uint64_t key_bits, r.GetVarint());
  if (key_bits < kMinWireKeyBits || key_bits > kMaxWireKeyBits)
    return Status::InvalidArgument("wire: key_bits out of range");
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> pk_bytes, r.GetBytes());
  if (pk_bytes.size() != (key_bits + 7) / 8)
    return Status::InvalidArgument("wire: bad public key width");
  msg.pk.n = BigInt::FromBytes(pk_bytes);
  msg.pk.key_bits = static_cast<int>(key_bits);
  if (msg.pk.n.BitLength() != msg.pk.key_bits)
    return Status::InvalidArgument("wire: public key not full-width");

  PPGNN_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind == kIndicatorOpt) {
    msg.is_opt = true;
    PPGNN_ASSIGN_OR_RETURN(msg.opt_indicator.omega, r.GetVarint());
    PPGNN_ASSIGN_OR_RETURN(msg.opt_indicator.block_size, r.GetVarint());
    // Bounding both factors to the delta' ceiling keeps the product well
    // inside 64 bits, so the shape comparison below cannot wrap.
    if (msg.opt_indicator.omega < 1 ||
        msg.opt_indicator.omega > kMaxWireDeltaPrime ||
        msg.opt_indicator.block_size < 1 ||
        msg.opt_indicator.block_size > kMaxWireDeltaPrime ||
        msg.opt_indicator.omega * msg.opt_indicator.block_size <
            msg.plan.delta_prime) {
      return Status::InvalidArgument("wire: OPT indicator shape invalid");
    }
    for (uint64_t i = 0; i < msg.opt_indicator.block_size; ++i) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, msg.pk, 1));
      msg.opt_indicator.v1.push_back(std::move(ct));
    }
    for (uint64_t i = 0; i < msg.opt_indicator.omega; ++i) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, msg.pk, 2));
      msg.opt_indicator.v2.push_back(std::move(ct));
    }
  } else if (kind == kIndicatorPlain) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    if (count != msg.plan.delta_prime)
      return Status::InvalidArgument("wire: indicator length != delta'");
    for (uint64_t i = 0; i < count; ++i) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, msg.pk, 1));
      msg.indicator.push_back(std::move(ct));
    }
  } else {
    return Status::InvalidArgument("wire: unknown indicator kind");
  }
  PPGNN_RETURN_IF_ERROR(
      ReadQueryTrailer(r, &msg.deadline_ms, &msg.idempotency_key));
  return msg;
}

Result<QueryWireHeader> PeekQueryHeader(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  QueryWireHeader header;
  if (IsShardQuery(bytes)) {
    // Plaintext shard fan-out: expose k and the shipped candidate count so
    // queueing/dedup still work, but leave key material zeroed — the
    // crypto-calibrated cost model must not price this request.
    header.is_shard = true;
    PPGNN_RETURN_IF_ERROR(r.GetU8().status());  // magic
    PPGNN_ASSIGN_OR_RETURN(uint64_t sk64, r.GetVarint());
    if (sk64 < 1 || sk64 > kMaxWireK)
      return Status::InvalidArgument("wire: k out of range");
    header.k = static_cast<int>(sk64);
    PPGNN_ASSIGN_OR_RETURN(uint8_t agg, r.GetU8());
    if (agg > static_cast<uint8_t>(AggregateKind::kMin))
      return Status::InvalidArgument("wire: bad aggregate kind");
    PPGNN_ASSIGN_OR_RETURN(header.delta_prime, r.GetVarint());
    if (header.delta_prime < 1 || header.delta_prime > kMaxWireDeltaPrime)
      return Status::InvalidArgument("wire: candidate count out of range");
    for (uint64_t i = 0; i < header.delta_prime; ++i) {
      PPGNN_RETURN_IF_ERROR(r.GetVarint().status());  // global index
      PPGNN_ASSIGN_OR_RETURN(uint64_t pts, r.GetVarint());
      if (pts < 1 || pts > kMaxWireSubgroupSize)
        return Status::InvalidArgument("wire: candidate size out of range");
      for (uint64_t j = 0; j < 2 * pts; ++j) {
        PPGNN_RETURN_IF_ERROR(r.GetDouble().status());
      }
    }
    PPGNN_RETURN_IF_ERROR(
        ReadQueryTrailer(r, &header.deadline_ms, &header.idempotency_key));
    return header;
  }
  PPGNN_ASSIGN_OR_RETURN(uint64_t k64, r.GetVarint());
  if (k64 < 1 || k64 > kMaxWireK)
    return Status::InvalidArgument("wire: k out of range");
  header.k = static_cast<int>(k64);
  PPGNN_RETURN_IF_ERROR(r.GetDouble().status());  // theta0
  PPGNN_RETURN_IF_ERROR(r.GetU8().status());      // aggregate
  PartitionPlan plan;
  PPGNN_ASSIGN_OR_RETURN(uint64_t alpha, r.GetVarint());
  if (alpha < 1 || alpha > 4096)
    return Status::InvalidArgument("wire: bad alpha");
  plan.alpha = static_cast<int>(alpha);
  for (uint64_t j = 0; j < alpha; ++j) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t nb, r.GetVarint());
    if (nb < 1 || nb > kMaxWireSubgroupSize)
      return Status::InvalidArgument("wire: subgroup size out of range");
  }
  PPGNN_ASSIGN_OR_RETURN(uint64_t beta, r.GetVarint());
  if (beta < 1 || beta > 1 << 20)
    return Status::InvalidArgument("wire: bad beta");
  for (uint64_t i = 0; i < beta; ++i) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t db, r.GetVarint());
    if (db < 1 || db > kMaxWireSegmentSize)
      return Status::InvalidArgument("wire: segment size out of range");
    plan.d_bar.push_back(static_cast<int>(db));
  }
  PPGNN_ASSIGN_OR_RETURN(header.delta_prime, CheckedPlanDeltaPrime(plan));

  PPGNN_ASSIGN_OR_RETURN(uint64_t key_bits, r.GetVarint());
  if (key_bits < kMinWireKeyBits || key_bits > kMaxWireKeyBits)
    return Status::InvalidArgument("wire: key_bits out of range");
  PPGNN_ASSIGN_OR_RETURN(uint64_t pk_len, r.SkipBytes());
  if (pk_len != (key_bits + 7) / 8)
    return Status::InvalidArgument("wire: bad public key width");
  header.key_bits = static_cast<int>(key_bits);

  PPGNN_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  uint64_t body_count = 0;
  if (kind == kIndicatorOpt) {
    header.is_opt = true;
    PPGNN_ASSIGN_OR_RETURN(header.omega, r.GetVarint());
    PPGNN_ASSIGN_OR_RETURN(uint64_t block_size, r.GetVarint());
    if (header.omega < 1 || header.omega > kMaxWireDeltaPrime ||
        block_size < 1 || block_size > kMaxWireDeltaPrime ||
        header.omega * block_size < header.delta_prime) {
      return Status::InvalidArgument("wire: OPT indicator shape invalid");
    }
    body_count = header.omega + block_size;
  } else if (kind == kIndicatorPlain) {
    PPGNN_ASSIGN_OR_RETURN(body_count, r.GetVarint());
    if (body_count != header.delta_prime)
      return Status::InvalidArgument("wire: indicator length != delta'");
  } else {
    return Status::InvalidArgument("wire: unknown indicator kind");
  }
  // Skip the ciphertext bodies without touching them: the peek must stay
  // O(indicator count), never O(ciphertext bytes).
  for (uint64_t i = 0; i < body_count; ++i) {
    PPGNN_RETURN_IF_ERROR(r.SkipBytes().status());
  }
  PPGNN_RETURN_IF_ERROR(
      ReadQueryTrailer(r, &header.deadline_ms, &header.idempotency_key));
  return header;
}

bool IsShardQuery(const std::vector<uint8_t>& bytes) {
  return !bytes.empty() && bytes[0] == kShardMagic;
}

Result<std::vector<uint8_t>> ShardQueryMessage::Encode() const {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.shard.encode"));
  if (k < 1 || static_cast<uint64_t>(k) > kMaxWireK)
    return Status::InvalidArgument("wire: k out of range");
  if (candidates.empty() || candidates.size() > kMaxWireDeltaPrime)
    return Status::InvalidArgument("wire: candidate count out of range");
  ByteWriter w;
  w.PutU8(kShardMagic);
  w.PutVarint(static_cast<uint64_t>(k));
  w.PutU8(static_cast<uint8_t>(aggregate));
  w.PutVarint(candidates.size());
  for (const Candidate& c : candidates) {
    if (c.index > kMaxWireDeltaPrime)
      return Status::InvalidArgument("wire: candidate index out of range");
    if (c.locations.empty() || c.locations.size() > kMaxWireSubgroupSize)
      return Status::InvalidArgument("wire: candidate size out of range");
    w.PutVarint(c.index);
    w.PutVarint(c.locations.size());
    // Raw IEEE doubles, not the 8-byte quantization: the shard's solver
    // must see the exact values the coordinator's own solver would.
    for (const Point& p : c.locations) {
      w.PutDouble(p.x);
      w.PutDouble(p.y);
    }
  }
  if (deadline_ms != 0 || idempotency_key != 0) {
    if (deadline_ms > kMaxWireMillis)
      return Status::InvalidArgument("wire: deadline_ms out of range");
    w.PutU8(kQueryTrailerTag);
    w.PutVarint(deadline_ms);
    w.PutU64(idempotency_key);
  }
  return w.Release();
}

Result<ShardQueryMessage> ShardQueryMessage::Decode(
    const std::vector<uint8_t>& bytes) {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.shard.decode"));
  ByteReader r(bytes);
  ShardQueryMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint8_t magic, r.GetU8());
  if (magic != kShardMagic)
    return Status::InvalidArgument("wire: missing shard magic");
  PPGNN_ASSIGN_OR_RETURN(uint64_t k64, r.GetVarint());
  if (k64 < 1 || k64 > kMaxWireK)
    return Status::InvalidArgument("wire: k out of range");
  msg.k = static_cast<int>(k64);
  PPGNN_ASSIGN_OR_RETURN(uint8_t agg, r.GetU8());
  if (agg > static_cast<uint8_t>(AggregateKind::kMin))
    return Status::InvalidArgument("wire: bad aggregate kind");
  msg.aggregate = static_cast<AggregateKind>(agg);
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count < 1 || count > kMaxWireDeltaPrime)
    return Status::InvalidArgument("wire: candidate count out of range");
  msg.candidates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Candidate c;
    PPGNN_ASSIGN_OR_RETURN(c.index, r.GetVarint());
    if (c.index > kMaxWireDeltaPrime)
      return Status::InvalidArgument("wire: candidate index out of range");
    PPGNN_ASSIGN_OR_RETURN(uint64_t pts, r.GetVarint());
    if (pts < 1 || pts > kMaxWireSubgroupSize)
      return Status::InvalidArgument("wire: candidate size out of range");
    c.locations.reserve(pts);
    for (uint64_t j = 0; j < pts; ++j) {
      Point p;
      PPGNN_ASSIGN_OR_RETURN(p.x, r.GetDouble());
      PPGNN_ASSIGN_OR_RETURN(p.y, r.GetDouble());
      if (!std::isfinite(p.x) || !std::isfinite(p.y))
        return Status::InvalidArgument("wire: non-finite candidate location");
      c.locations.push_back(p);
    }
    msg.candidates.push_back(std::move(c));
  }
  PPGNN_RETURN_IF_ERROR(
      ReadQueryTrailer(r, &msg.deadline_ms, &msg.idempotency_key));
  return msg;
}

Result<std::vector<uint8_t>> ShardAnswerMessage::Encode() const {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.shard.encode"));
  if (candidates.empty() || candidates.size() > kMaxWireDeltaPrime)
    return Status::InvalidArgument("wire: candidate count out of range");
  ByteWriter w;
  w.PutU8(kShardMagic);
  w.PutVarint(candidates.size());
  for (const CandidateResult& c : candidates) {
    if (c.index > kMaxWireDeltaPrime)
      return Status::InvalidArgument("wire: candidate index out of range");
    if (c.results.size() > kMaxWireK)
      return Status::InvalidArgument("wire: result count out of range");
    w.PutVarint(c.index);
    w.PutVarint(c.results.size());
    for (const Ranked& rk : c.results) {
      w.PutU32(rk.poi_id);
      w.PutDouble(rk.location.x);
      w.PutDouble(rk.location.y);
      w.PutDouble(rk.cost);
    }
  }
  return w.Release();
}

Result<ShardAnswerMessage> ShardAnswerMessage::Decode(
    const std::vector<uint8_t>& bytes) {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.shard.decode"));
  ByteReader r(bytes);
  ShardAnswerMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint8_t magic, r.GetU8());
  if (magic != kShardMagic)
    return Status::InvalidArgument("wire: missing shard magic");
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count < 1 || count > kMaxWireDeltaPrime)
    return Status::InvalidArgument("wire: candidate count out of range");
  msg.candidates.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    CandidateResult c;
    PPGNN_ASSIGN_OR_RETURN(c.index, r.GetVarint());
    if (c.index > kMaxWireDeltaPrime)
      return Status::InvalidArgument("wire: candidate index out of range");
    PPGNN_ASSIGN_OR_RETURN(uint64_t results, r.GetVarint());
    if (results > kMaxWireK)
      return Status::InvalidArgument("wire: result count out of range");
    c.results.reserve(results);
    std::unordered_set<uint32_t> seen_ids;
    for (uint64_t j = 0; j < results; ++j) {
      Ranked rk;
      PPGNN_ASSIGN_OR_RETURN(rk.poi_id, r.GetU32());
      PPGNN_ASSIGN_OR_RETURN(rk.location.x, r.GetDouble());
      PPGNN_ASSIGN_OR_RETURN(rk.location.y, r.GetDouble());
      PPGNN_ASSIGN_OR_RETURN(rk.cost, r.GetDouble());
      // A NaN cost would break the strict-weak-ordering contract of the
      // coordinator's merge sort; reject it at the trust boundary.
      if (!std::isfinite(rk.location.x) || !std::isfinite(rk.location.y) ||
          !std::isfinite(rk.cost)) {
        return Status::InvalidArgument("wire: non-finite shard result");
      }
      // The solver emits each candidate's list strictly ascending by
      // (cost, poi id) with distinct ids; a replica violating either is
      // buggy or corrupted, and letting it through would let one bad
      // replica poison the exact cross-shard merge. Strict (cost, id)
      // ascent is checked pairwise; id uniqueness needs its own pass
      // because a duplicate id may legally ascend by cost.
      if (!c.results.empty()) {
        const Ranked& prev = c.results.back();
        if (rk.cost < prev.cost ||
            (rk.cost == prev.cost && rk.poi_id <= prev.poi_id)) {
          return Status::InvalidArgument(
              "wire: shard results out of (cost, id) order");
        }
      }
      if (!seen_ids.insert(rk.poi_id).second)
        return Status::InvalidArgument("wire: duplicate shard result id");
      c.results.push_back(rk);
    }
    msg.candidates.push_back(std::move(c));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

std::vector<uint8_t> LocationSetMessage::Encode() const {
  ByteWriter w;
  w.PutU32(user_id);
  w.PutVarint(locations.size());
  for (const Point& p : locations) WritePoint(w, p);
  return w.Release();
}

Result<LocationSetMessage> LocationSetMessage::Decode(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  LocationSetMessage msg;
  PPGNN_ASSIGN_OR_RETURN(msg.user_id, r.GetU32());
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count < 1 || count > 1 << 20)
    return Status::InvalidArgument("wire: bad location-set size");
  msg.locations.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PPGNN_ASSIGN_OR_RETURN(Point p, ReadPoint(r));
    msg.locations.push_back(p);
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

Result<std::vector<uint8_t>> AnswerMessage::Encode(const PublicKey& pk) const {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.answer.encode"));
  if (ciphertexts.empty())
    return Status::InvalidArgument("wire: refusing to encode empty answer");
  const int level = ciphertexts[0].level;
  if (level < 1 || level > 4)
    return Status::InvalidArgument("wire: bad ciphertext level in answer");
  for (const Ciphertext& ct : ciphertexts) {
    if (ct.level != level)
      return Status::InvalidArgument(
          "wire: mixed ciphertext levels in answer");
  }
  ByteWriter w;
  w.PutVarint(ciphertexts.size());
  w.PutU8(static_cast<uint8_t>(level));
  for (const Ciphertext& ct : ciphertexts) {
    PPGNN_RETURN_IF_ERROR(AppendCiphertext(w, ct, pk));
  }
  return w.Release();
}

Result<AnswerMessage> AnswerMessage::Decode(const std::vector<uint8_t>& bytes,
                                            const PublicKey& pk) {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.answer.decode"));
  ByteReader r(bytes);
  AnswerMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count == 0) return Status::InvalidArgument("wire: empty answer");
  PPGNN_ASSIGN_OR_RETURN(uint8_t level, r.GetU8());
  if (level < 1 || level > 4)
    return Status::InvalidArgument("wire: bad ciphertext level");
  for (uint64_t i = 0; i < count; ++i) {
    PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, pk, level));
    msg.ciphertexts.push_back(std::move(ct));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

std::vector<uint8_t> AnswerBroadcast::Encode() const {
  ByteWriter w;
  w.PutVarint(pois.size());
  for (const Point& p : pois) WritePoint(w, p);
  return w.Release();
}

Result<AnswerBroadcast> AnswerBroadcast::Decode(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  AnswerBroadcast msg;
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count > 1 << 16)
    return Status::InvalidArgument("wire: implausible answer size");
  for (uint64_t i = 0; i < count; ++i) {
    PPGNN_ASSIGN_OR_RETURN(Point p, ReadPoint(r));
    msg.pois.push_back(p);
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

const char* WireErrorToString(WireError code) {
  switch (code) {
    case WireError::kMalformed:
      return "Malformed";
    case WireError::kOverloaded:
      return "Overloaded";
    case WireError::kDeadlineExceeded:
      return "DeadlineExceeded";
    case WireError::kInternal:
      return "Internal";
    case WireError::kShuttingDown:
      return "ShuttingDown";
  }
  return "Unknown";
}

WireError WireErrorFromStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
    case StatusCode::kProtocolError:
      return WireError::kMalformed;
    case StatusCode::kResourceExhausted:
      return WireError::kOverloaded;
    case StatusCode::kDeadlineExceeded:
      return WireError::kDeadlineExceeded;
    default:
      return WireError::kInternal;
  }
}

std::vector<uint8_t> ErrorMessage::Encode() const {
  ByteWriter w;
  w.PutU8(static_cast<uint8_t>(code));
  std::string clipped = detail;
  if (clipped.size() > kMaxWireErrorDetail)
    clipped.resize(kMaxWireErrorDetail);
  w.PutBytes(std::vector<uint8_t>(clipped.begin(), clipped.end()));
  // Version-gated hint: a zero hint encodes as the version-1 frame, so
  // pre-hint decoders keep accepting everything we emit by default.
  if (retry_after_ms != 0) {
    w.PutVarint(std::min(retry_after_ms, kMaxWireMillis));
  }
  return w.Release();
}

Result<ErrorMessage> ErrorMessage::Decode(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  ErrorMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint8_t code, r.GetU8());
  if (code > static_cast<uint8_t>(WireError::kShuttingDown))
    return Status::InvalidArgument("wire: unknown error code");
  msg.code = static_cast<WireError>(code);
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> detail, r.GetBytes());
  if (detail.size() > kMaxWireErrorDetail)
    return Status::InvalidArgument("wire: oversized error detail");
  msg.detail.assign(detail.begin(), detail.end());
  if (!r.AtEnd()) {
    PPGNN_ASSIGN_OR_RETURN(msg.retry_after_ms, r.GetVarint());
    if (msg.retry_after_ms == 0 || msg.retry_after_ms > kMaxWireMillis)
      return Status::InvalidArgument("wire: retry_after_ms out of range");
    if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  }
  return msg;
}

std::vector<uint8_t> ResponseFrame::WrapAnswer(
    std::vector<uint8_t> answer_bytes) {
  return WrapFrame(kFrameAnswer, answer_bytes.data(), answer_bytes.size());
}

std::vector<uint8_t> ResponseFrame::WrapError(const ErrorMessage& error) {
  std::vector<uint8_t> payload = error.Encode();
  return WrapFrame(kFrameError, payload.data(), payload.size());
}

Result<ResponseFrame> ResponseFrame::Decode(
    const std::vector<uint8_t>& bytes) {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("wire.frame.decode"));
  if (bytes.size() < kFrameHeaderBytes)
    return Status::InvalidArgument("wire: short response frame");
  const uint32_t stored = static_cast<uint32_t>(bytes[1]) |
                          static_cast<uint32_t>(bytes[2]) << 8 |
                          static_cast<uint32_t>(bytes[3]) << 16 |
                          static_cast<uint32_t>(bytes[4]) << 24;
  const uint8_t* payload_data = bytes.data() + kFrameHeaderBytes;
  const size_t payload_len = bytes.size() - kFrameHeaderBytes;
  if (Crc32(payload_data, payload_len) != stored)
    return Status::InvalidArgument("wire: response frame checksum mismatch");
  ResponseFrame frame;
  std::vector<uint8_t> payload(payload_data, payload_data + payload_len);
  if (bytes[0] == kFrameAnswer) {
    frame.is_error = false;
    frame.answer = std::move(payload);
  } else if (bytes[0] == kFrameError) {
    frame.is_error = true;
    PPGNN_ASSIGN_OR_RETURN(frame.error, ErrorMessage::Decode(payload));
  } else {
    return Status::InvalidArgument("wire: unknown response frame tag");
  }
  return frame;
}

}  // namespace ppgnn
