#include "core/wire.h"

#include "crypto/poi_codec.h"

namespace ppgnn {
namespace {

constexpr uint8_t kIndicatorPlain = 0;
constexpr uint8_t kIndicatorOpt = 1;

Status AppendCiphertext(ByteWriter& w, const Ciphertext& ct,
                        const PublicKey& pk) {
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes,
                         ct.value.ToBytesPadded(ct.ByteSize(pk)));
  w.PutBytes(bytes);
  return Status::OK();
}

Result<Ciphertext> ReadCiphertext(ByteReader& r, const PublicKey& pk,
                                  int level) {
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, r.GetBytes());
  if (bytes.size() != pk.CiphertextBytes(level))
    return Status::InvalidArgument("ciphertext width mismatch on wire");
  Ciphertext ct;
  ct.value = BigInt::FromBytes(bytes);
  ct.level = level;
  return ct;
}

void WritePoint(ByteWriter& w, const Point& p) {
  w.PutU32(QuantizeCoord(p.x));
  w.PutU32(QuantizeCoord(p.y));
}

Result<Point> ReadPoint(ByteReader& r) {
  PPGNN_ASSIGN_OR_RETURN(uint32_t x, r.GetU32());
  PPGNN_ASSIGN_OR_RETURN(uint32_t y, r.GetU32());
  return Point{DequantizeCoord(x), DequantizeCoord(y)};
}

uint64_t PlanDeltaPrime(const PartitionPlan& plan) {
  uint64_t total = 0;
  for (int db : plan.d_bar) {
    uint64_t term = 1;
    for (int i = 0; i < plan.alpha; ++i) term *= static_cast<uint64_t>(db);
    total += term;
  }
  return total;
}

}  // namespace

std::vector<uint8_t> QueryMessage::Encode() const {
  ByteWriter w;
  w.PutVarint(static_cast<uint64_t>(k));
  w.PutDouble(theta0);
  w.PutU8(static_cast<uint8_t>(aggregate));
  w.PutVarint(static_cast<uint64_t>(plan.alpha));
  for (int nb : plan.n_bar) w.PutVarint(static_cast<uint64_t>(nb));
  w.PutVarint(static_cast<uint64_t>(plan.beta()));
  for (int db : plan.d_bar) w.PutVarint(static_cast<uint64_t>(db));
  w.PutBytes(pk.n.ToBytesPadded(pk.ByteSize()).value());
  if (is_opt) {
    w.PutU8(kIndicatorOpt);
    w.PutVarint(opt_indicator.omega);
    w.PutVarint(opt_indicator.block_size);
    for (const Ciphertext& ct : opt_indicator.v1) {
      (void)AppendCiphertext(w, ct, pk);
    }
    for (const Ciphertext& ct : opt_indicator.v2) {
      (void)AppendCiphertext(w, ct, pk);
    }
  } else {
    w.PutU8(kIndicatorPlain);
    w.PutVarint(indicator.size());
    for (const Ciphertext& ct : indicator) {
      (void)AppendCiphertext(w, ct, pk);
    }
  }
  return w.Release();
}

Result<QueryMessage> QueryMessage::Decode(const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  QueryMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint64_t k64, r.GetVarint());
  msg.k = static_cast<int>(k64);
  if (msg.k < 1) return Status::InvalidArgument("wire: k < 1");
  PPGNN_ASSIGN_OR_RETURN(msg.theta0, r.GetDouble());
  PPGNN_ASSIGN_OR_RETURN(uint8_t agg, r.GetU8());
  if (agg > static_cast<uint8_t>(AggregateKind::kMin))
    return Status::InvalidArgument("wire: bad aggregate kind");
  msg.aggregate = static_cast<AggregateKind>(agg);

  PPGNN_ASSIGN_OR_RETURN(uint64_t alpha, r.GetVarint());
  if (alpha < 1 || alpha > 4096)
    return Status::InvalidArgument("wire: bad alpha");
  msg.plan.alpha = static_cast<int>(alpha);
  for (uint64_t j = 0; j < alpha; ++j) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t nb, r.GetVarint());
    if (nb < 1) return Status::InvalidArgument("wire: empty subgroup");
    msg.plan.n_bar.push_back(static_cast<int>(nb));
  }
  PPGNN_ASSIGN_OR_RETURN(uint64_t beta, r.GetVarint());
  if (beta < 1 || beta > 1 << 20)
    return Status::InvalidArgument("wire: bad beta");
  for (uint64_t i = 0; i < beta; ++i) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t db, r.GetVarint());
    if (db < 1) return Status::InvalidArgument("wire: empty segment");
    msg.plan.d_bar.push_back(static_cast<int>(db));
  }
  msg.plan.delta_prime = PlanDeltaPrime(msg.plan);

  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> pk_bytes, r.GetBytes());
  if (pk_bytes.empty() || pk_bytes.size() % 8 != 0)
    return Status::InvalidArgument("wire: bad public key width");
  msg.pk.n = BigInt::FromBytes(pk_bytes);
  msg.pk.key_bits = static_cast<int>(pk_bytes.size() * 8);
  if (msg.pk.n.BitLength() != msg.pk.key_bits)
    return Status::InvalidArgument("wire: public key not full-width");

  PPGNN_ASSIGN_OR_RETURN(uint8_t kind, r.GetU8());
  if (kind == kIndicatorOpt) {
    msg.is_opt = true;
    PPGNN_ASSIGN_OR_RETURN(msg.opt_indicator.omega, r.GetVarint());
    PPGNN_ASSIGN_OR_RETURN(msg.opt_indicator.block_size, r.GetVarint());
    if (msg.opt_indicator.omega < 1 || msg.opt_indicator.block_size < 1 ||
        msg.opt_indicator.omega * msg.opt_indicator.block_size <
            msg.plan.delta_prime) {
      return Status::InvalidArgument("wire: OPT indicator shape invalid");
    }
    for (uint64_t i = 0; i < msg.opt_indicator.block_size; ++i) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, msg.pk, 1));
      msg.opt_indicator.v1.push_back(std::move(ct));
    }
    for (uint64_t i = 0; i < msg.opt_indicator.omega; ++i) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, msg.pk, 2));
      msg.opt_indicator.v2.push_back(std::move(ct));
    }
  } else if (kind == kIndicatorPlain) {
    PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
    if (count != msg.plan.delta_prime)
      return Status::InvalidArgument("wire: indicator length != delta'");
    for (uint64_t i = 0; i < count; ++i) {
      PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, msg.pk, 1));
      msg.indicator.push_back(std::move(ct));
    }
  } else {
    return Status::InvalidArgument("wire: unknown indicator kind");
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

std::vector<uint8_t> LocationSetMessage::Encode() const {
  ByteWriter w;
  w.PutU32(user_id);
  w.PutVarint(locations.size());
  for (const Point& p : locations) WritePoint(w, p);
  return w.Release();
}

Result<LocationSetMessage> LocationSetMessage::Decode(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  LocationSetMessage msg;
  PPGNN_ASSIGN_OR_RETURN(msg.user_id, r.GetU32());
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count < 1 || count > 1 << 20)
    return Status::InvalidArgument("wire: bad location-set size");
  msg.locations.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    PPGNN_ASSIGN_OR_RETURN(Point p, ReadPoint(r));
    msg.locations.push_back(p);
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

std::vector<uint8_t> AnswerMessage::Encode(const PublicKey& pk) const {
  ByteWriter w;
  w.PutVarint(ciphertexts.size());
  if (!ciphertexts.empty())
    w.PutU8(static_cast<uint8_t>(ciphertexts[0].level));
  for (const Ciphertext& ct : ciphertexts) {
    (void)AppendCiphertext(w, ct, pk);
  }
  return w.Release();
}

Result<AnswerMessage> AnswerMessage::Decode(const std::vector<uint8_t>& bytes,
                                            const PublicKey& pk) {
  ByteReader r(bytes);
  AnswerMessage msg;
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count == 0) return Status::InvalidArgument("wire: empty answer");
  PPGNN_ASSIGN_OR_RETURN(uint8_t level, r.GetU8());
  if (level < 1 || level > 4)
    return Status::InvalidArgument("wire: bad ciphertext level");
  for (uint64_t i = 0; i < count; ++i) {
    PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, ReadCiphertext(r, pk, level));
    msg.ciphertexts.push_back(std::move(ct));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

std::vector<uint8_t> AnswerBroadcast::Encode() const {
  ByteWriter w;
  w.PutVarint(pois.size());
  for (const Point& p : pois) WritePoint(w, p);
  return w.Release();
}

Result<AnswerBroadcast> AnswerBroadcast::Decode(
    const std::vector<uint8_t>& bytes) {
  ByteReader r(bytes);
  AnswerBroadcast msg;
  PPGNN_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  if (count > 1 << 16)
    return Status::InvalidArgument("wire: implausible answer size");
  for (uint64_t i = 0; i < count; ++i) {
    PPGNN_ASSIGN_OR_RETURN(Point p, ReadPoint(r));
    msg.pois.push_back(p);
  }
  if (!r.AtEnd()) return Status::InvalidArgument("wire: trailing bytes");
  return msg;
}

}  // namespace ppgnn
