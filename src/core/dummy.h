// Dummy-location generation policies.
//
// Privacy I hides each user's real location among d-1 dummies. The paper
// delegates dummy quality to dedicated algorithms (Lu et al.'s PAD, Niu
// et al.'s k-anonymity dummies) — a dummy is only as good as it is
// plausible: if an LSP holds a population-density prior, dummies dropped
// uniformly into empty desert are easy to rule out. This module provides
// three policies:
//
//   * UniformDummyGenerator    — uniform over the unit square (the
//                                default; what the experiments use).
//   * PoiDensityDummyGenerator — samples from the POI density histogram,
//                                mimicking where real users plausibly are
//                                (Niu et al. style). Strongest against a
//                                prior-equipped adversary.
//   * NearbyDummyGenerator     — Gaussian around the real location.
//                                Deliberately weak (it leaks a region);
//                                included for the ablation bench.
//
// The ablation bench (bench_ablation_dummies) quantifies the difference
// with a Bayesian adversary.

#ifndef PPGNN_CORE_DUMMY_H_
#define PPGNN_CORE_DUMMY_H_

#include <vector>

#include "common/random.h"
#include "geo/point.h"

namespace ppgnn {

/// Abstract dummy factory. Thread-compatible; all state is immutable
/// after construction.
class DummyGenerator {
 public:
  virtual ~DummyGenerator() = default;

  /// One dummy location. `real` is the user's true location (most
  /// policies ignore it; NearbyDummyGenerator does not).
  virtual Point Generate(const Point& real, Rng& rng) const = 0;

  virtual const char* name() const = 0;
};

/// Uniform over the unit square.
class UniformDummyGenerator : public DummyGenerator {
 public:
  Point Generate(const Point& real, Rng& rng) const override;
  const char* name() const override { return "uniform"; }
};

/// Samples a grid cell proportionally to its POI count (add-one smoothed
/// so empty cells remain possible), then uniformly within the cell.
class PoiDensityDummyGenerator : public DummyGenerator {
 public:
  PoiDensityDummyGenerator(const std::vector<Poi>& pois, int grid = 32);

  Point Generate(const Point& real, Rng& rng) const override;
  const char* name() const override { return "poi-density"; }

  /// Prior probability mass of the cell containing `p` (used by the
  /// adversary model in the ablation).
  double CellMass(const Point& p) const;

 private:
  int grid_;
  std::vector<double> cumulative_;  // CDF over cells
  std::vector<double> mass_;        // per-cell probability
};

/// Gaussian around the real location, clamped to the unit square.
class NearbyDummyGenerator : public DummyGenerator {
 public:
  explicit NearbyDummyGenerator(double sigma = 0.05) : sigma_(sigma) {}

  Point Generate(const Point& real, Rng& rng) const override;
  const char* name() const override { return "nearby"; }

 private:
  double sigma_;
};

/// The process-wide uniform generator (stateless default).
const DummyGenerator& UniformDummies();

}  // namespace ppgnn

#endif  // PPGNN_CORE_DUMMY_H_
