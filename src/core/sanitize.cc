#include "core/sanitize.h"

#include "core/attack.h"

namespace ppgnn {

Result<AnswerSanitizer> AnswerSanitizer::Create(double theta0,
                                                const TestConfig& config) {
  PPGNN_ASSIGN_OR_RETURN(uint64_t n_h, RequiredSampleSize(theta0, config));
  return AnswerSanitizer(theta0, config, n_h);
}

bool AnswerSanitizer::PrefixSafeForTarget(
    const std::vector<Point>& colluders,
    const std::vector<Point>& prefix_points, AggregateKind kind, Rng& rng,
    SanitizeStats* stats, const DistanceOracle* oracle) const {
  InequalityAttack attack(colluders, prefix_points, kind,
                          {0.0, 0.0, 1.0, 1.0}, oracle);
  SequentialProportionTest test(sample_size_, theta0_, config_.gamma);
  if (stats != nullptr) ++stats->tests_run;
  while (test.CurrentVerdict() ==
         SequentialProportionTest::Verdict::kUndecided) {
    bool hit = attack.Satisfies(attack.SamplePoint(rng));
    test.AddSample(hit);
    if (stats != nullptr) ++stats->samples_drawn;
  }
  // Rejecting H0 proves the solution region exceeds theta0: safe.
  return test.CurrentVerdict() == SequentialProportionTest::Verdict::kReject;
}

std::vector<RankedPoi> AnswerSanitizer::Sanitize(
    const std::vector<RankedPoi>& answer, const std::vector<Point>& locations,
    AggregateKind kind, Rng& rng, SanitizeStats* stats,
    const DistanceOracle* oracle) const {
  const size_t n = locations.size();
  if (n <= 1 || answer.size() <= 1) return answer;

  std::vector<Point> prefix_points;
  prefix_points.reserve(answer.size());
  prefix_points.push_back(answer[0].poi.location);

  size_t safe_len = 1;  // the length-1 prefix carries no inequalities
  std::vector<Point> colluders(n - 1);
  for (size_t t = 2; t <= answer.size(); ++t) {
    prefix_points.push_back(answer[t - 1].poi.location);
    bool safe_for_all = true;
    for (size_t target = 0; target < n; ++target) {
      size_t w = 0;
      for (size_t u = 0; u < n; ++u) {
        if (u != target) colluders[w++] = locations[u];
      }
      if (!PrefixSafeForTarget(colluders, prefix_points, kind, rng, stats,
                               oracle)) {
        safe_for_all = false;
        break;
      }
    }
    if (!safe_for_all) break;
    safe_len = t;
  }
  return std::vector<RankedPoi>(answer.begin(),
                                answer.begin() + static_cast<long>(safe_len));
}

}  // namespace ppgnn
