// Wire formats for the protocol's messages.
//
// Every message that crosses a party boundary in the simulation is
// actually serialized with these codecs and re-parsed on the receiving
// side, so (a) the byte counts reported as communication cost are the
// true wire sizes, and (b) the LSP computes on exactly what the users
// sent (e.g. the 8-byte fixed-point quantization of locations is real,
// not simulated).
//
// Layout summary (all integers little-endian or LEB128 varint):
//   QueryMessage     k, theta0, aggregate, alpha, n_bar[], beta, d_bar[],
//                    pk (key_bits/8 bytes), indicator kind,
//                    [v] or ([v1], [[v2]]) as fixed-width ciphertexts
//   LocationSetMessage  user id + d x 8-byte fixed-point locations
//   AnswerMessage    m fixed-width ciphertexts (level 1 or 2)

#ifndef PPGNN_CORE_WIRE_H_
#define PPGNN_CORE_WIRE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "core/candidate.h"
#include "core/indicator.h"
#include "core/partition.h"
#include "crypto/paillier.h"
#include "geo/aggregate.h"

namespace ppgnn {

/// The coordinator -> LSP query message (Algorithm 1, line 11).
struct QueryMessage {
  int k = 0;
  double theta0 = 0.0;
  AggregateKind aggregate = AggregateKind::kSum;
  PartitionPlan plan;  // delta_prime is recomputed on decode
  PublicKey pk;
  /// Exactly one of the two indicator encodings is present.
  bool is_opt = false;
  std::vector<Ciphertext> indicator;  // PPGNN / Naive
  OptIndicator opt_indicator;         // PPGNN-OPT

  std::vector<uint8_t> Encode() const;
  static Result<QueryMessage> Decode(const std::vector<uint8_t>& bytes);
};

/// One user's (i, L_i) upload (Algorithm 1, line 15).
struct LocationSetMessage {
  uint32_t user_id = 0;
  LocationSet locations;

  std::vector<uint8_t> Encode() const;
  static Result<LocationSetMessage> Decode(const std::vector<uint8_t>& bytes);
};

/// The LSP -> coordinator encrypted answer (Algorithm 2, line 8).
struct AnswerMessage {
  std::vector<Ciphertext> ciphertexts;

  /// Needs the public key for the fixed ciphertext widths.
  std::vector<uint8_t> Encode(const PublicKey& pk) const;
  static Result<AnswerMessage> Decode(const std::vector<uint8_t>& bytes,
                                      const PublicKey& pk);
};

/// The coordinator -> group plaintext answer broadcast.
struct AnswerBroadcast {
  std::vector<Point> pois;

  std::vector<uint8_t> Encode() const;
  static Result<AnswerBroadcast> Decode(const std::vector<uint8_t>& bytes);
};

}  // namespace ppgnn

#endif  // PPGNN_CORE_WIRE_H_
