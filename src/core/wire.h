// Wire formats for the protocol's messages.
//
// Every message that crosses a party boundary in the simulation is
// actually serialized with these codecs and re-parsed on the receiving
// side, so (a) the byte counts reported as communication cost are the
// true wire sizes, and (b) the LSP computes on exactly what the users
// sent (e.g. the 8-byte fixed-point quantization of locations is real,
// not simulated).
//
// The decoders treat their input as adversarial: every count is bounded
// before it is cast or used as a loop limit, and the delta' recomputation
// is overflow-checked against kMaxWireDeltaPrime so a hostile plan cannot
// wrap the candidate count small and slip an undersized indicator past
// the length check.
//
// Layout summary (all integers little-endian or LEB128 varint):
//   QueryMessage     k, theta0, aggregate, alpha, n_bar[], beta, d_bar[],
//                    pk (key_bits/8 bytes), indicator kind,
//                    [v] or ([v1], [[v2]]) as fixed-width ciphertexts
//   LocationSetMessage  user id + d x 8-byte fixed-point locations
//   AnswerMessage    m fixed-width ciphertexts (level 1 or 2)
//   ErrorMessage     1-byte code + short UTF-8 detail string
//   ResponseFrame    1-byte tag, 4-byte CRC32 of the payload, then an
//                    AnswerMessage or ErrorMessage payload
//
// The frame CRC exists for fault tolerance, not security: a client that
// receives a bit-flipped reply (chaos tests inject exactly this) must be
// able to tell "corrupted in transit, retry" from "valid answer whose
// ciphertexts decrypt to garbage" — without it, corruption inside a
// ciphertext body would silently decode into wrong POIs.

#ifndef PPGNN_CORE_WIRE_H_
#define PPGNN_CORE_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/candidate.h"
#include "core/indicator.h"
#include "core/partition.h"
#include "crypto/paillier.h"
#include "geo/aggregate.h"

namespace ppgnn {

/// Decode-side hard limits. These are deliberately far above anything the
/// paper's parameter ranges produce (k <= 50, n <= 32, d <= 50,
/// delta' <= a few thousand) but small enough that no bounded value can
/// overflow an int or drive the LSP into an unbounded candidate loop.
inline constexpr uint64_t kMaxWireK = 1 << 16;
inline constexpr uint64_t kMaxWireSubgroupSize = 1 << 16;   // n_bar entries
inline constexpr uint64_t kMaxWireSegmentSize = 1 << 16;    // d_bar entries
inline constexpr uint64_t kMaxWireDeltaPrime = 1 << 22;     // candidate count
inline constexpr uint64_t kMaxWireErrorDetail = 1 << 10;    // bytes
/// Upper bound on the optional deadline / retry-after hints (~12 days in
/// milliseconds) — far beyond any sane budget, small enough that seconds
/// conversions cannot overflow a double's integer range.
inline constexpr uint64_t kMaxWireMillis = 1ull << 30;
/// Bounds on the explicit key_bits field: keys below the GenerateKeyPair
/// floor or beyond any deployed size are rejected before the modulus bytes
/// are even looked at.
inline constexpr uint64_t kMinWireKeyBits = 64;
inline constexpr uint64_t kMaxWireKeyBits = 1 << 16;

/// The coordinator -> LSP query message (Algorithm 1, line 11).
struct QueryMessage {
  int k = 0;
  double theta0 = 0.0;
  AggregateKind aggregate = AggregateKind::kSum;
  PartitionPlan plan;  // delta_prime is recomputed on decode
  PublicKey pk;
  /// Exactly one of the two indicator encodings is present.
  bool is_opt = false;
  std::vector<Ciphertext> indicator;  // PPGNN / Naive
  OptIndicator opt_indicator;         // PPGNN-OPT
  /// Optional wire-version-2 trailer (0 = absent): the client's remaining
  /// time budget for this query, propagated so the server can shed or
  /// abandon work the caller would no longer accept, and a client-chosen
  /// idempotency key so a retried or hedged duplicate can be coalesced
  /// with the in-flight original instead of re-running the crypto
  /// pipeline. Version-1 frames simply end after the indicator; they
  /// decode with both fields zero, and Encode emits no trailer when both
  /// are zero — old readers and writers interoperate unchanged.
  uint64_t deadline_ms = 0;
  uint64_t idempotency_key = 0;

  /// Errors (instead of crashing) when a ciphertext or the public key
  /// does not fit its fixed wire width.
  [[nodiscard]] Result<std::vector<uint8_t>> Encode() const;
  [[nodiscard]] static Result<QueryMessage> Decode(const std::vector<uint8_t>& bytes);
};

/// The admission-relevant prefix of an encoded QueryMessage, parsed
/// without materializing any ciphertext (bodies are length-skipped).
/// This is what cost-aware admission reads *before* deciding to spend
/// crypto on a request: every field is public wire metadata — none of it
/// derives from `// ppgnn: secret` data.
struct QueryWireHeader {
  int k = 0;
  uint64_t delta_prime = 0;
  int key_bits = 0;
  bool is_opt = false;
  uint64_t omega = 0;       ///< OPT block count (0 for plain)
  uint64_t deadline_ms = 0;
  uint64_t idempotency_key = 0;
  /// True when the bytes are a ShardQueryMessage (plaintext candidate
  /// evaluation) rather than a full encrypted QueryMessage. Shard queries
  /// carry no key material, so key_bits/omega stay zero and the crypto
  /// cost model must not be applied to them; delta_prime is the candidate
  /// count shipped to this shard.
  bool is_shard = false;
};

/// Bounds-checked header peek over QueryMessage bytes. Validation depth
/// matches QueryMessage::Decode for everything it reads; a query that
/// peeks cleanly can still fail full decode (e.g. a wrong-width
/// ciphertext body), which surfaces later as kMalformed.
[[nodiscard]] Result<QueryWireHeader> PeekQueryHeader(
    const std::vector<uint8_t>& bytes);

/// Coordinator -> shard candidate-evaluation request. The sharded cluster
/// keeps all crypto at the coordinator: shards only run the plaintext kGNN
/// over their POI slice, so this message ships raw (unquantized) candidate
/// locations — the exact doubles the coordinator would have fed its own
/// solver — keeping the S=1 cluster bit-identical to the single-node path.
/// The leading 0x00 magic byte is unreachable as a QueryMessage (whose
/// first varint is k >= 1), so one wire endpoint can serve both shapes.
struct ShardQueryMessage {
  struct Candidate {
    /// Global candidate index within the subgroup/segment enumeration, so
    /// a partial (degraded) gather still merges into the right
    /// answer-matrix columns.
    uint64_t index = 0;
    std::vector<Point> locations;
  };

  int k = 0;
  AggregateKind aggregate = AggregateKind::kSum;
  std::vector<Candidate> candidates;
  /// Same optional wire-v2 trailer as QueryMessage: the coordinator
  /// propagates its remaining budget and a per-shard-derived idempotency
  /// key through the fan-out so retried/hedged shard legs coalesce.
  uint64_t deadline_ms = 0;
  uint64_t idempotency_key = 0;

  [[nodiscard]] Result<std::vector<uint8_t>> Encode() const;
  [[nodiscard]] static Result<ShardQueryMessage> Decode(
      const std::vector<uint8_t>& bytes);
};

/// Shard -> coordinator per-candidate top-k answer. Raw doubles again: the
/// merge sorts on exactly the costs the shard's solver computed.
struct ShardAnswerMessage {
  struct Ranked {
    uint32_t poi_id = 0;
    Point location;
    double cost = 0.0;
  };
  struct CandidateResult {
    uint64_t index = 0;
    std::vector<Ranked> results;
  };

  std::vector<CandidateResult> candidates;

  [[nodiscard]] Result<std::vector<uint8_t>> Encode() const;
  [[nodiscard]] static Result<ShardAnswerMessage> Decode(
      const std::vector<uint8_t>& bytes);
};

/// True when the bytes carry the shard-query magic (leading 0x00). A
/// QueryMessage can never start with 0x00 (its first varint is k >= 1).
[[nodiscard]] bool IsShardQuery(const std::vector<uint8_t>& bytes);

/// One user's (i, L_i) upload (Algorithm 1, line 15).
struct LocationSetMessage {
  uint32_t user_id = 0;
  LocationSet locations;

  std::vector<uint8_t> Encode() const;
  [[nodiscard]] static Result<LocationSetMessage> Decode(const std::vector<uint8_t>& bytes);
};

/// The LSP -> coordinator encrypted answer (Algorithm 2, line 8).
struct AnswerMessage {
  std::vector<Ciphertext> ciphertexts;

  /// Needs the public key for the fixed ciphertext widths. Empty answers
  /// and mixed ciphertext levels are encode-time errors: the format
  /// carries a single level byte, so a mixed vector cannot round-trip.
  [[nodiscard]] Result<std::vector<uint8_t>> Encode(const PublicKey& pk) const;
  [[nodiscard]] static Result<AnswerMessage> Decode(const std::vector<uint8_t>& bytes,
                                      const PublicKey& pk);
};

/// The coordinator -> group plaintext answer broadcast.
struct AnswerBroadcast {
  std::vector<Point> pois;

  std::vector<uint8_t> Encode() const;
  [[nodiscard]] static Result<AnswerBroadcast> Decode(const std::vector<uint8_t>& bytes);
};

/// Machine-readable failure class of a served request, so clients can
/// distinguish "my query was malformed" from "the server is overloaded"
/// from "my deadline expired" without parsing error text.
enum class WireError : uint8_t {
  kMalformed = 0,         ///< query/upload bytes failed to decode or validate
  kOverloaded = 1,        ///< admission control rejected the request
  kDeadlineExceeded = 2,  ///< the request's time budget ran out
  kInternal = 3,          ///< anything else that went wrong server-side
  /// The service is draining for shutdown: the request was never
  /// admitted and a resend to a live instance (or after restart — see
  /// retry_after_ms) will succeed. Retryable, unlike kInternal.
  kShuttingDown = 4,
};

/// Number of WireError codes (for per-code counter arrays).
inline constexpr size_t kWireErrorCount =
    static_cast<size_t>(WireError::kShuttingDown) + 1;

const char* WireErrorToString(WireError code);

/// Maps a Status from the serving path onto the wire taxonomy.
WireError WireErrorFromStatus(const Status& status);

/// The LSP -> coordinator structured error reply.
struct ErrorMessage {
  WireError code = WireError::kInternal;
  std::string detail;  ///< human-readable, truncated to kMaxWireErrorDetail
  /// Optional backpressure hint on kOverloaded replies (0 = none): how
  /// long the server expects its backlog to need before a resend has a
  /// chance. Version-gated like the QueryMessage trailer: old frames end
  /// after the detail string and decode with the hint absent.
  uint64_t retry_after_ms = 0;

  std::vector<uint8_t> Encode() const;
  [[nodiscard]] static Result<ErrorMessage> Decode(const std::vector<uint8_t>& bytes);
};

/// Envelope for everything the LSP service sends back: one tag byte, a
/// CRC32 of the payload, then either raw AnswerMessage bytes or an
/// ErrorMessage. Plain LspHandleQuery (the library entry point) still
/// returns bare AnswerMessage bytes; the framing exists so a *served*
/// reply is self-describing on the wire and corruption is detectable
/// (Decode fails with a checksum error rather than mis-parsing).
struct ResponseFrame {
  bool is_error = false;
  std::vector<uint8_t> answer;  ///< AnswerMessage bytes when !is_error
  ErrorMessage error;           ///< set when is_error

  static std::vector<uint8_t> WrapAnswer(std::vector<uint8_t> answer_bytes);
  static std::vector<uint8_t> WrapError(const ErrorMessage& error);
  [[nodiscard]] static Result<ResponseFrame> Decode(const std::vector<uint8_t>& bytes);
};

}  // namespace ppgnn

#endif  // PPGNN_CORE_WIRE_H_
