// The inequality attack (Section 5.1).
//
// Colluding users u_2..u_n know their own locations and the ranked answer
// P = {p_1, ..., p_k} with F(p_i, C*) <= F(p_{i+1}, C*). Substituting a
// candidate location l for the unknown target user gives k-1 inequalities
// (Eqn 14); the set of l satisfying all of them is the solution region the
// target's real location must lie in. Privacy IV holds iff that region is
// larger than a theta0 fraction of the data space for every target.
//
// This class serves two roles: the *attacker* (examples / experiments
// measuring how small the region gets) and the *defender* (LSP's answer
// sanitation, which Monte-Carlo-tests the region size). Per-POI aggregate
// contributions of the colluders are precomputed, so each membership test
// costs only |answer| distance evaluations regardless of n.

#ifndef PPGNN_CORE_ATTACK_H_
#define PPGNN_CORE_ATTACK_H_

#include <vector>

#include "common/random.h"
#include "geo/aggregate.h"
#include "geo/distance_oracle.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace ppgnn {

class InequalityAttack {
 public:
  /// `colluders`: the n-1 known locations (may be empty: a single-user
  /// "attack" constrains the user itself). `ranked_answer`: the POI
  /// locations in reported rank order. `space`: the data space to sample
  /// (the unit square in all experiments). `oracle` selects the metric
  /// `dis` (Euclidean when null); the oracle must outlive the attack.
  InequalityAttack(std::vector<Point> colluders,
                   std::vector<Point> ranked_answer, AggregateKind kind,
                   Rect space = {0.0, 0.0, 1.0, 1.0},
                   const DistanceOracle* oracle = nullptr);

  /// True iff placing the target at `candidate` keeps all of Eqn 14's
  /// inequalities satisfied, i.e. `candidate` is in the solution region.
  bool Satisfies(const Point& candidate) const;

  /// Monte-Carlo estimate of the solution region's fraction of the space.
  double EstimateRegionFraction(Rng& rng, uint64_t samples) const;

  /// Uniform sample from the space (exposed so the sanitizer can share
  /// sampling with its sequential test).
  Point SamplePoint(Rng& rng) const;

  size_t NumInequalities() const {
    return ranked_answer_.empty() ? 0 : ranked_answer_.size() - 1;
  }

 private:
  double Dis(const Point& a, const Point& b) const;

  std::vector<Point> ranked_answer_;
  std::vector<double> partial_;  // colluder-only aggregate per answer POI
  AggregateKind kind_;
  Rect space_;
  bool has_colluders_;
  const DistanceOracle* oracle_;  // null = Euclidean fast path
};

}  // namespace ppgnn

#endif  // PPGNN_CORE_ATTACK_H_
