#include "core/protocol.h"

#include <algorithm>
#include <thread>

#include "common/bytes.h"
#include "common/failpoint.h"
#include "core/candidate.h"
#include "core/indicator.h"
#include "core/partition.h"
#include "core/sanitize.h"
#include "core/selection.h"
#include "core/wire.h"
#include "crypto/poi_codec.h"

namespace ppgnn {

const char* VariantToString(Variant variant) {
  switch (variant) {
    case Variant::kPpgnn:
      return "PPGNN";
    case Variant::kPpgnnOpt:
      return "PPGNN-OPT";
    case Variant::kNaive:
      return "Naive";
  }
  return "unknown";
}

LspDatabase::LspDatabase(std::vector<Poi> pois)
    : tree_(RTree::Build(std::move(pois))),
      solver_(std::make_unique<MbmGnnSolver>(&tree_)) {}

/// FNV mix over (k, quantized coords): order-dependent within one
/// candidate's location list but independent of candidate *processing*
/// order, so the sanitized answer is the same whichever worker — or
/// whichever node of the sharded cluster — handles the candidate.
uint64_t LspSanitizeSeed(const std::vector<Point>& locations, int k) {
  uint64_t h = 0xcbf29ce484222325ULL ^ static_cast<uint64_t>(k);
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const Point& p : locations) {
    mix(QuantizeCoord(p.x));
    mix(QuantizeCoord(p.y));
  }
  return h;
}

namespace {

/// Round-trips a point through the 8-byte wire format (the paper
/// transmits 8 bytes per location/POI). The plaintext reference applies
/// the same quantization so results compare bit-exactly with the
/// protocol, whose locations genuinely travel through the wire codecs.
Point QuantizePoint(const Point& p) {
  return {DequantizeCoord(QuantizeCoord(p.x)),
          DequantizeCoord(QuantizeCoord(p.y))};
}

struct Plan {
  PartitionPlan partition;
  int set_size = 0;  // d for PPGNN/OPT, delta for Naive
};

Result<Plan> MakePlan(Variant variant, const ProtocolParams& params) {
  Plan plan;
  if (variant == Variant::kNaive) {
    if (params.n == 1) {
      return Status::InvalidArgument(
          "the Naive variant is defined for group queries (n > 1)");
    }
    plan.partition.alpha = 1;
    plan.partition.n_bar = {params.n};
    plan.partition.d_bar = {params.delta};
    plan.partition.delta_prime = static_cast<uint64_t>(params.delta);
    plan.set_size = params.delta;
  } else {
    PPGNN_ASSIGN_OR_RETURN(
        plan.partition,
        SolvePartition(params.n, params.d, params.EffectiveDelta()));
    plan.set_size = params.d;
  }
  return plan;
}

/// The LSP side of Algorithm 2, operating purely on decoded wire
/// messages. Returns the encrypted selected answer. Candidate processing
/// (kGNN + sanitation + encoding) fans out over `lsp_threads` workers;
/// the per-candidate sanitation seed keeps results identical regardless
/// of the thread count.
Result<AnswerMessage> LspProcessQuery(const LspDatabase& lsp,
                                      const QueryMessage& query,
                                      const std::vector<LocationSetMessage>&
                                          uploads,
                                      bool sanitize,
                                      const TestConfig& test_config,
                                      int lsp_threads,
                                      QueryInstrumentation* info,
                                      const std::atomic<bool>* cancel) {
  PPGNN_RETURN_IF_ERROR(FailpointCheck("lsp.process"));
  // Reassemble the location sets in user order.
  std::vector<LocationSet> sets(uploads.size());
  for (const LocationSetMessage& msg : uploads) {
    if (msg.user_id >= sets.size())
      return Status::ProtocolError("upload from unknown user id");
    sets[msg.user_id] = msg.locations;
  }

  PPGNN_ASSIGN_OR_RETURN(std::vector<std::vector<Point>> candidates,
                         GenerateCandidateQueries(query.plan, sets, cancel));

  // Built once per query, up front: the Encryptor derives the per-level
  // Montgomery contexts at construction and the selection workers below
  // share them read-only — no hot-path context derivation.
  Encryptor enc(query.pk);

  AnswerSanitizer* sanitizer_ptr = nullptr;
  Result<AnswerSanitizer> sanitizer =
      Status::FailedPrecondition("sanitizer unused");
  if (sanitize) {
    sanitizer = AnswerSanitizer::Create(query.theta0, test_config);
    PPGNN_RETURN_IF_ERROR(sanitizer.status());
    sanitizer_ptr = &sanitizer.value();
  }

  PoiCodec codec(query.pk.key_bits);
  const size_t m = codec.IntsNeeded(static_cast<size_t>(query.k));
  AnswerMatrix matrix;
  matrix.columns.resize(candidates.size());

  const int workers = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(std::max(lsp_threads, 1)),
      std::max<size_t>(candidates.size(), 1)));
  std::vector<Status> worker_status(workers, Status::OK());
  std::vector<SanitizeStats> worker_stats(workers);
  std::vector<double> worker_sanitize_seconds(workers, 0.0);
  std::vector<double> worker_cpu_seconds(workers, 0.0);

  auto process_range = [&](int worker) {
    double start = ThreadCpuSeconds();
    for (size_t i = static_cast<size_t>(worker); i < candidates.size();
         i += static_cast<size_t>(workers)) {
      if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
        worker_status[worker] =
            Status::DeadlineExceeded("lsp: query abandoned past deadline");
        break;
      }
      if (Status s = FailpointCheck("lsp.candidate"); !s.ok()) {
        worker_status[worker] = std::move(s);
        break;
      }
      const std::vector<Point>& candidate = candidates[i];
      std::vector<RankedPoi> answer =
          lsp.solver().Query(candidate, query.k, query.aggregate);
      if (sanitizer_ptr != nullptr) {
        double t0 = ThreadCpuSeconds();
        Rng candidate_rng(LspSanitizeSeed(candidate, query.k));
        answer = sanitizer_ptr->Sanitize(answer, candidate, query.aggregate,
                                         candidate_rng, &worker_stats[worker],
                                         lsp.distance_oracle());
        worker_sanitize_seconds[worker] += ThreadCpuSeconds() - t0;
      }
      std::vector<Point> points;
      points.reserve(answer.size());
      for (const RankedPoi& rp : answer) points.push_back(rp.poi.location);
      Result<std::vector<BigInt>> column = codec.Encode(points, m);
      if (!column.ok()) {
        worker_status[worker] = column.status();
        break;
      }
      matrix.columns[i] = std::move(column).value();
    }
    worker_cpu_seconds[worker] = ThreadCpuSeconds() - start;
  };

  if (workers == 1) {
    process_range(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<size_t>(workers - 1));
    for (int w = 1; w < workers; ++w) {
      pool.emplace_back(process_range, w);
    }
    process_range(0);
    for (std::thread& t : pool) t.join();
  }
  for (int w = 0; w < workers; ++w) {
    PPGNN_RETURN_IF_ERROR(worker_status[w]);
    info->sanitize_seconds += worker_sanitize_seconds[w];
    info->sanitize_samples += worker_stats[w].samples_drawn;
    info->sanitize_tests += worker_stats[w].tests_run;
    if (w > 0) info->lsp_parallel_seconds += worker_cpu_seconds[w];
  }

  if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
    return Status::DeadlineExceeded("lsp: query abandoned before selection");
  }
  PPGNN_RETURN_IF_ERROR(FailpointCheck("lsp.select"));
  AnswerMessage out;
  if (query.is_opt) {
    PPGNN_ASSIGN_OR_RETURN(
        out.ciphertexts,
        PrivateSelectTwoPhase(enc, matrix, query.opt_indicator, lsp_threads,
                              &info->lsp_parallel_seconds, cancel));
  } else {
    PPGNN_ASSIGN_OR_RETURN(
        out.ciphertexts,
        PrivateSelect(enc, matrix, query.indicator, lsp_threads,
                      &info->lsp_parallel_seconds, cancel));
  }
  return out;
}

}  // namespace

Status ProtocolParams::Validate() const {
  if (n < 1) return Status::InvalidArgument("n must be >= 1");
  if (d < 2) return Status::InvalidArgument("d must be > 1 (Privacy I)");
  if (n > 1 && delta < d)
    return Status::InvalidArgument("delta must be >= d (Privacy II)");
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (theta0 <= 0.0 || theta0 > 1.0)
    return Status::InvalidArgument("theta0 must lie in (0, 1]");
  if (key_bits < 128 || key_bits % 2 != 0)
    return Status::InvalidArgument("key_bits must be even and >= 128");
  if (lsp_threads < 1 || lsp_threads > 256)
    return Status::InvalidArgument("lsp_threads must lie in [1, 256]");
  if (blinding_pool < 0)
    return Status::InvalidArgument("blinding_pool must be >= 0");
  return Status::OK();
}

Result<std::vector<uint8_t>> LspHandleQuery(
    const LspDatabase& lsp, const std::vector<uint8_t>& query_bytes,
    const std::vector<std::vector<uint8_t>>& upload_bytes,
    const TestConfig& test_config, bool sanitize, int lsp_threads,
    QueryInstrumentation* info, const std::atomic<bool>* cancel) {
  QueryInstrumentation local_info;
  if (info == nullptr) info = &local_info;
  PPGNN_ASSIGN_OR_RETURN(QueryMessage query, QueryMessage::Decode(query_bytes));
  info->delta_prime = query.plan.delta_prime;
  std::vector<LocationSetMessage> uploads;
  uploads.reserve(upload_bytes.size());
  for (const auto& bytes : upload_bytes) {
    PPGNN_ASSIGN_OR_RETURN(LocationSetMessage msg,
                           LocationSetMessage::Decode(bytes));
    uploads.push_back(std::move(msg));
  }
  const bool effective_sanitize = sanitize && uploads.size() > 1;
  PPGNN_ASSIGN_OR_RETURN(
      AnswerMessage answer,
      LspProcessQuery(lsp, query, uploads, effective_sanitize, test_config,
                      lsp_threads, info, cancel));
  return answer.Encode(query.pk);
}

Result<std::vector<uint8_t>> LspHandleShardQuery(
    const LspDatabase& lsp, const std::vector<uint8_t>& query_bytes,
    QueryInstrumentation* info, const std::atomic<bool>* cancel) {
  QueryInstrumentation local_info;
  if (info == nullptr) info = &local_info;
  PPGNN_RETURN_IF_ERROR(FailpointCheck("lsp.process"));
  PPGNN_ASSIGN_OR_RETURN(ShardQueryMessage query,
                         ShardQueryMessage::Decode(query_bytes));
  info->delta_prime = query.candidates.size();
  ShardAnswerMessage answer;
  answer.candidates.reserve(query.candidates.size());
  for (const ShardQueryMessage::Candidate& candidate : query.candidates) {
    if (cancel != nullptr && cancel->load(std::memory_order_acquire)) {
      return Status::DeadlineExceeded("lsp: shard query abandoned");
    }
    PPGNN_RETURN_IF_ERROR(FailpointCheck("lsp.candidate"));
    std::vector<RankedPoi> ranked =
        lsp.solver().Query(candidate.locations, query.k, query.aggregate);
    ShardAnswerMessage::CandidateResult result;
    result.index = candidate.index;
    result.results.reserve(ranked.size());
    for (const RankedPoi& rp : ranked) {
      ShardAnswerMessage::Ranked out;
      out.poi_id = rp.poi.id;
      out.location = rp.poi.location;
      out.cost = rp.cost;
      result.results.push_back(out);
    }
    answer.candidates.push_back(std::move(result));
  }
  return answer.Encode();
}

std::vector<RankedPoi> ReferenceAnswer(const ProtocolParams& params,
                                       const std::vector<Point>& real_locations,
                                       const LspDatabase& lsp, Rng&) {
  std::vector<Point> quantized;
  quantized.reserve(real_locations.size());
  for (const Point& p : real_locations) quantized.push_back(QuantizePoint(p));
  std::vector<RankedPoi> answer =
      lsp.solver().Query(quantized, params.k, params.aggregate);
  if (params.sanitize && params.n > 1) {
    auto sanitizer = AnswerSanitizer::Create(params.theta0, params.test);
    if (sanitizer.ok()) {
      Rng rng(LspSanitizeSeed(quantized, params.k));
      answer = sanitizer->Sanitize(answer, quantized, params.aggregate, rng,
                                   nullptr, lsp.distance_oracle());
    }
  }
  return answer;
}

Result<QueryOutcome> RunQuery(Variant variant, const ProtocolParams& params,
                              const std::vector<Point>& real_locations,
                              const LspDatabase& lsp, Rng& rng,
                              const KeyPair* fixed_keys) {
  PPGNN_RETURN_IF_ERROR(params.Validate());
  if (real_locations.size() != static_cast<size_t>(params.n))
    return Status::InvalidArgument("real_locations.size() != n");
  if (variant == Variant::kPpgnnOpt && params.key_bits < 192)
    return Status::InvalidArgument(
        "PPGNN-OPT needs key_bits >= 192 for level-2 ciphertexts");

  CostTracker tracker;
  QueryInstrumentation info;
  const int n = params.n;

  // ===== Coordinator (Algorithm 1): plan, positions, query index =====
  Plan plan;
  int seg = 1;
  std::vector<int> x;    // per-subgroup 1-based position within segment
  std::vector<int> pos;  // per-subgroup 1-based absolute position
  uint64_t qi = 0;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    PPGNN_ASSIGN_OR_RETURN(plan, MakePlan(variant, params));
    const PartitionPlan& pp = plan.partition;
    // Segment chosen with probability d_bar[i] / d (Eqn 11).
    int64_t pick = rng.NextInRange(1, plan.set_size);
    int64_t acc = 0;
    for (int i = 1; i <= pp.beta(); ++i) {
      acc += pp.d_bar[i - 1];
      if (pick <= acc) {
        seg = i;
        break;
      }
    }
    x.resize(pp.alpha);
    pos.resize(pp.alpha);
    for (int j = 0; j < pp.alpha; ++j) {
      x[j] = static_cast<int>(rng.NextInRange(1, pp.d_bar[seg - 1]));
      pos[j] = pp.SegmentOffset(seg) - 1 + x[j];
    }
    qi = QueryIndex(pp, seg, x);
  }
  info.delta_prime = plan.partition.delta_prime;

  // Broadcast pos_j to every non-coordinator user (user 0 coordinates).
  {
    std::vector<int> subgroup = SubgroupOfUser(plan.partition);
    for (int u = 1; u < n; ++u) {
      ByteWriter w;
      w.PutVarint(static_cast<uint64_t>(pos[subgroup[u]]));
      tracker.RecordSend(Link::kUserToUser, w.size());
    }
  }

  // ===== Coordinator: keys and encrypted indicator =====
  KeyPair keys;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    if (fixed_keys != nullptr) {
      keys = *fixed_keys;
    } else {
      PPGNN_ASSIGN_OR_RETURN(keys, GenerateKeyPair(params.key_bits, rng));
    }
  }
  Decryptor dec(keys.pub, keys.sec);
  PoiCodec codec(params.key_bits);
  const size_t m = codec.IntsNeeded(static_cast<size_t>(params.k));
  info.answer_width_m = m;

  QueryMessage query;
  query.k = params.k;
  query.theta0 = params.theta0;
  query.aggregate = params.aggregate;
  query.plan = plan.partition;
  query.pk = keys.pub;
  // Offline phase: with params.blinding_pool > 0 the coordinator's
  // device precomputes blinding factors while idle (untimed — a phone
  // does this before the user even forms the query), so the timed user
  // phase below pays only the pooled online cost per indicator
  // ciphertext. The pool draws from the same rng stream; determinism is
  // unaffected, only the accounting boundary moves.
  Encryptor enc(keys.pub);
  if (params.blinding_pool > 0) {
    const size_t pool = static_cast<size_t>(params.blinding_pool);
    PPGNN_RETURN_IF_ERROR(enc.RefillBlindingPool(1, pool, rng));
    if (variant == Variant::kPpgnnOpt)
      PPGNN_RETURN_IF_ERROR(enc.RefillBlindingPool(2, pool, rng));
  }
  {
    ScopedTimer timer(&tracker, Party::kUser);
    if (variant == Variant::kPpgnnOpt) {
      query.is_opt = true;
      info.omega = ChooseOmega(plan.partition.delta_prime, m);
      PPGNN_ASSIGN_OR_RETURN(
          query.opt_indicator,
          EncryptOptIndicator(enc, qi, plan.partition.delta_prime, info.omega,
                              rng));
    } else {
      PPGNN_ASSIGN_OR_RETURN(
          query.indicator,
          EncryptIndicator(enc, qi, plan.partition.delta_prime, rng));
    }
  }

  // ===== Coordinator -> LSP: the query message, over the wire =====
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint8_t> query_bytes, query.Encode());
  tracker.RecordSend(Link::kUserToLsp, query_bytes.size());

  // ===== Every user: build and send the location set =====
  std::vector<std::vector<uint8_t>> upload_bytes(n);
  {
    ScopedTimer timer(&tracker, Party::kUser);
    std::vector<int> subgroup = SubgroupOfUser(plan.partition);
    const DummyGenerator& dummies = params.dummy_generator != nullptr
                                        ? *params.dummy_generator
                                        : UniformDummies();
    for (int u = 0; u < n; ++u) {
      LocationSetMessage msg;
      msg.user_id = static_cast<uint32_t>(u);
      msg.locations.resize(static_cast<size_t>(plan.set_size));
      if (FailpointDrop("user.upload")) {
        // Dropout degradation: the user never delivered its set, so the
        // coordinator substitutes a synthetic one around a random anchor
        // (it does not know the dropped user's location). Same d points,
        // same wire bytes per slot — the LSP's view is shape-identical.
        const Point anchor{rng.NextDouble(), rng.NextDouble()};
        for (Point& p : msg.locations) {
          p = dummies.Generate(anchor, rng);
        }
        info.degraded_users++;
      } else {
        for (Point& p : msg.locations) {
          p = dummies.Generate(real_locations[u], rng);
        }
        msg.locations[pos[subgroup[u]] - 1] = real_locations[u];
      }
      upload_bytes[u] = msg.Encode();
    }
  }
  for (int u = 0; u < n; ++u) {
    tracker.RecordSend(Link::kUserToLsp, upload_bytes[u].size());
  }

  // ===== LSP (Algorithm 2), through the wire-level entry point =====
  std::vector<uint8_t> answer_bytes;
  {
    ScopedTimer timer(&tracker, Party::kLsp);
    PPGNN_ASSIGN_OR_RETURN(
        answer_bytes,
        LspHandleQuery(lsp, query_bytes, upload_bytes, params.test,
                       params.sanitize, params.lsp_threads, &info));
  }
  // Work done by spawned LSP workers isn't visible to the main thread's
  // CPU timer; charge it explicitly so LSP cost = total compute.
  tracker.RecordCompute(Party::kLsp, info.lsp_parallel_seconds);

  // ===== LSP -> coordinator: the encrypted answer =====
  tracker.RecordSend(Link::kLspToUser, answer_bytes.size());

  // ===== Coordinator: decrypt, decode =====
  AnswerBroadcast broadcast;
  {
    ScopedTimer timer(&tracker, Party::kUser);
    PPGNN_ASSIGN_OR_RETURN(AnswerMessage received,
                           AnswerMessage::Decode(answer_bytes, keys.pub));
    std::vector<BigInt> plain;
    plain.reserve(received.ciphertexts.size());
    for (const Ciphertext& ct : received.ciphertexts) {
      if (variant == Variant::kPpgnnOpt) {
        PPGNN_ASSIGN_OR_RETURN(BigInt value, dec.DecryptLayered(ct));
        plain.push_back(std::move(value));
      } else {
        PPGNN_ASSIGN_OR_RETURN(BigInt value, dec.Decrypt(ct));
        plain.push_back(std::move(value));
      }
    }
    PPGNN_ASSIGN_OR_RETURN(broadcast.pois, codec.Decode(plain));
  }
  info.pois_returned = broadcast.pois.size();

  // ===== Coordinator -> other users: the plaintext answer =====
  if (n > 1) {
    std::vector<uint8_t> broadcast_bytes = broadcast.Encode();
    for (int u = 1; u < n; ++u) {
      tracker.RecordSend(Link::kUserToUser, broadcast_bytes.size());
    }
  }

  QueryOutcome outcome;
  outcome.pois = std::move(broadcast.pois);
  outcome.costs = tracker.report();
  outcome.info = info;
  return outcome;
}

}  // namespace ppgnn
