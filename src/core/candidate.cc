#include "core/candidate.h"

#include <numeric>

namespace ppgnn {
namespace {

Status ValidateSets(const PartitionPlan& plan,
                    const std::vector<LocationSet>& location_sets) {
  const int n = static_cast<int>(location_sets.size());
  int n_total = std::accumulate(plan.n_bar.begin(), plan.n_bar.end(), 0);
  if (n_total != n)
    return Status::InvalidArgument("plan subgroup sizes do not sum to n");
  const size_t d = static_cast<size_t>(
      std::accumulate(plan.d_bar.begin(), plan.d_bar.end(), 0));
  for (const LocationSet& set : location_sets) {
    if (set.size() != d)
      return Status::InvalidArgument("location set size != sum(d_bar)");
  }
  return Status::OK();
}

// Builds the candidate query for segment `seg` (1-based) and combination
// code `code` in [0, d_seg^alpha): digit j (most significant first) is the
// 0-based position of subgroup j+1 within the segment.
std::vector<Point> BuildCandidate(const PartitionPlan& plan,
                                  const std::vector<LocationSet>& sets,
                                  const std::vector<int>& subgroup_of_user,
                                  int seg, uint64_t code) {
  const int d_seg = plan.d_bar[seg - 1];
  const int offset0 = plan.SegmentOffset(seg) - 1;  // 0-based segment start
  // Decode per-subgroup positions.
  std::vector<int> pos0(plan.alpha);  // 0-based within segment
  for (int j = plan.alpha - 1; j >= 0; --j) {
    pos0[j] = static_cast<int>(code % static_cast<uint64_t>(d_seg));
    code /= static_cast<uint64_t>(d_seg);
  }
  std::vector<Point> candidate(sets.size());
  for (size_t u = 0; u < sets.size(); ++u) {
    candidate[u] = sets[u][offset0 + pos0[subgroup_of_user[u]]];
  }
  return candidate;
}

}  // namespace

std::vector<int> SubgroupOfUser(const PartitionPlan& plan) {
  std::vector<int> out;
  for (size_t j = 0; j < plan.n_bar.size(); ++j) {
    for (int c = 0; c < plan.n_bar[j]; ++c) out.push_back(static_cast<int>(j));
  }
  return out;
}

Result<std::vector<std::vector<Point>>> GenerateCandidateQueries(
    const PartitionPlan& plan, const std::vector<LocationSet>& location_sets,
    const std::atomic<bool>* cancel) {
  PPGNN_RETURN_IF_ERROR(ValidateSets(plan, location_sets));
  std::vector<int> subgroup = SubgroupOfUser(plan);
  std::vector<std::vector<Point>> out;
  out.reserve(plan.delta_prime);
  for (int seg = 1; seg <= plan.beta(); ++seg) {
    uint64_t combos = 1;
    for (int j = 0; j < plan.alpha; ++j)
      combos *= static_cast<uint64_t>(plan.d_bar[seg - 1]);
    for (uint64_t code = 0; code < combos; ++code) {
      // Poll coarsely: an atomic load per 64 candidates is invisible next
      // to the per-candidate vector construction.
      if ((out.size() & 63) == 0 && cancel != nullptr &&
          cancel->load(std::memory_order_acquire)) {
        return Status::DeadlineExceeded(
            "candidate expansion abandoned past deadline");
      }
      out.push_back(BuildCandidate(plan, location_sets, subgroup, seg, code));
    }
  }
  return out;
}

Result<std::vector<Point>> CandidateQueryAt(
    const PartitionPlan& plan, const std::vector<LocationSet>& location_sets,
    uint64_t qi) {
  PPGNN_RETURN_IF_ERROR(ValidateSets(plan, location_sets));
  if (qi < 1 || qi > plan.delta_prime)
    return Status::OutOfRange("candidate query index out of range");
  uint64_t remaining = qi - 1;
  for (int seg = 1; seg <= plan.beta(); ++seg) {
    uint64_t combos = 1;
    for (int j = 0; j < plan.alpha; ++j)
      combos *= static_cast<uint64_t>(plan.d_bar[seg - 1]);
    if (remaining < combos) {
      std::vector<int> subgroup = SubgroupOfUser(plan);
      return BuildCandidate(plan, location_sets, subgroup, seg, remaining);
    }
    remaining -= combos;
  }
  return Status::Internal("candidate index not located");
}

}  // namespace ppgnn
