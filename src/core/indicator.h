// Encrypted indicator vectors.
//
// PPGNN encodes the real query's position qi among the delta' candidates
// as a one-hot vector v of length delta', encrypted element-wise under
// eps_1 (Section 4.2). PPGNN-OPT (Section 6) factorizes v into
//
//   v1  (length ceil(delta'/omega), eps_1) — position within a block,
//   v2  (length omega,              eps_2) — which block,
//
// so the user encrypts and ships O(sqrt(delta')) ciphertexts instead of
// O(delta'). omega* minimizes the wire cost 2*omega + delta'/omega + 2m
// (Eqn 18), whose real-valued optimum is sqrt(delta'/2).

#ifndef PPGNN_CORE_INDICATOR_H_
#define PPGNN_CORE_INDICATOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "crypto/paillier.h"

namespace ppgnn {

/// PPGNN-OPT factorized indicator.
struct OptIndicator {
  std::vector<Ciphertext> v1;  ///< eps_1, selects the offset within a block
  std::vector<Ciphertext> v2;  ///< eps_2, selects the block
  uint64_t omega = 0;          ///< = v2.size()
  uint64_t block_size = 0;     ///< = v1.size() = ceil(delta' / omega)
};

/// Integer omega in [1, delta'] minimizing 2*omega + ceil(delta'/omega) +
/// 2*m (Eqn 18's cost in units of L_e). m is the packed answer width.
uint64_t ChooseOmega(uint64_t delta_prime, size_t m);

/// One-hot plaintext vector of length `length` with 1 at 1-based `qi`.
Result<std::vector<BigInt>> MakeIndicator(uint64_t qi, uint64_t length);

/// Element-wise eps_1 encryption of the one-hot vector (PPGNN).
Result<std::vector<Ciphertext>> EncryptIndicator(const Encryptor& enc,
                                                 uint64_t qi, uint64_t length,
                                                 Rng& rng);

/// Factorized encryption (PPGNN-OPT). The real query at 0-based position
/// qi-1 lives in block (qi-1)/block_size at offset (qi-1)%block_size.
Result<OptIndicator> EncryptOptIndicator(const Encryptor& enc, uint64_t qi,
                                         uint64_t delta_prime, uint64_t omega,
                                         Rng& rng);

}  // namespace ppgnn

#endif  // PPGNN_CORE_INDICATOR_H_
