#include "core/indicator.h"

#include <cmath>

// The query position inside the candidate window — and the block/offset
// pair derived from it — is the value the whole protocol hides from the
// LSP. It must never branch control flow or reach a log/encode sink.
// ppgnn: secret(qi, block, offset)

namespace ppgnn {

uint64_t ChooseOmega(uint64_t delta_prime, size_t m) {
  if (delta_prime <= 1) return 1;
  auto cost = [&](uint64_t omega) {
    uint64_t blocks = (delta_prime + omega - 1) / omega;
    return 2 * omega + blocks + 2 * static_cast<uint64_t>(m);
  };
  uint64_t center = static_cast<uint64_t>(
      std::llround(std::sqrt(static_cast<double>(delta_prime) / 2.0)));
  uint64_t best = 1;
  uint64_t best_cost = cost(1);
  for (int64_t delta = -2; delta <= 2; ++delta) {
    int64_t candidate = static_cast<int64_t>(center) + delta;
    if (candidate < 1 || candidate > static_cast<int64_t>(delta_prime))
      continue;
    uint64_t w = static_cast<uint64_t>(candidate);
    if (cost(w) < best_cost) {
      best_cost = cost(w);
      best = w;
    }
  }
  return best;
}

Result<std::vector<BigInt>> MakeIndicator(uint64_t qi, uint64_t length) {
  // ppgnn-lint: allow(secret-flow): user-side range validation before encryption; runs on the trusted client, nothing observable by the LSP
  if (qi < 1 || qi > length)
    return Status::OutOfRange("indicator position out of range");
  std::vector<BigInt> v(length, BigInt(0));
  v[qi - 1] = BigInt(1);
  return v;
}

Result<std::vector<Ciphertext>> EncryptIndicator(const Encryptor& enc,
                                                 uint64_t qi, uint64_t length,
                                                 Rng& rng) {
  PPGNN_ASSIGN_OR_RETURN(std::vector<BigInt> plain, MakeIndicator(qi, length));
  std::vector<Ciphertext> out;
  out.reserve(plain.size());
  for (const BigInt& bit : plain) {
    PPGNN_ASSIGN_OR_RETURN(Ciphertext ct, enc.Encrypt(bit, rng, 1));
    out.push_back(std::move(ct));
  }
  return out;
}

Result<OptIndicator> EncryptOptIndicator(const Encryptor& enc, uint64_t qi,
                                         uint64_t delta_prime, uint64_t omega,
                                         Rng& rng) {
  if (omega < 1 || omega > delta_prime)
    return Status::InvalidArgument("omega must lie in [1, delta']");
  // ppgnn-lint: allow(secret-flow): user-side range validation before encryption; runs on the trusted client, nothing observable by the LSP
  if (qi < 1 || qi > delta_prime)
    return Status::OutOfRange("indicator position out of range");
  OptIndicator out;
  out.omega = omega;
  out.block_size = (delta_prime + omega - 1) / omega;
  const uint64_t block = (qi - 1) / out.block_size;
  const uint64_t offset = (qi - 1) % out.block_size;

  out.v1.reserve(out.block_size);
  for (uint64_t i = 0; i < out.block_size; ++i) {
    PPGNN_ASSIGN_OR_RETURN(
        Ciphertext ct, enc.Encrypt(BigInt(i == offset ? 1 : 0), rng, 1));
    out.v1.push_back(std::move(ct));
  }
  out.v2.reserve(omega);
  for (uint64_t b = 0; b < omega; ++b) {
    PPGNN_ASSIGN_OR_RETURN(Ciphertext ct,
                           enc.Encrypt(BigInt(b == block ? 1 : 0), rng, 2));
    out.v2.push_back(std::move(ct));
  }
  return out;
}

}  // namespace ppgnn
