// Candidate-query generation on the LSP side (Section 4.1 of the paper).
//
// Given every user's location set L_i (all of size d) and the partition
// plan {n_bar, d_bar}, LSP forms, for each segment, the cartesian product
// over subgroups of the segment's positions, yielding
// delta' = sum_i d_bar[i]^alpha candidate queries in the lexicographic
// order of (segment, subgroup-1 position, ..., subgroup-alpha position).
// The list index of the real query equals Eqn 12's QueryIndex.

#ifndef PPGNN_CORE_CANDIDATE_H_
#define PPGNN_CORE_CANDIDATE_H_

#include <atomic>
#include <vector>

#include "common/status.h"
#include "core/partition.h"
#include "geo/point.h"

namespace ppgnn {

/// One user's location set: exactly d locations, the real one hidden at an
/// agreed position.
using LocationSet = std::vector<Point>;

/// Maps user index (0-based) to subgroup index (0-based) under the plan.
std::vector<int> SubgroupOfUser(const PartitionPlan& plan);

/// Enumerates all candidate queries in candidate-list order. Each inner
/// vector has one location per user, in user order. Validates that every
/// location set has size sum(d_bar). `cancel`, when non-null, is a
/// cooperative abort flag polled periodically during expansion (delta'
/// can reach the millions under adversarial plans); once set the call
/// returns DeadlineExceeded instead of finishing the enumeration.
Result<std::vector<std::vector<Point>>> GenerateCandidateQueries(
    const PartitionPlan& plan, const std::vector<LocationSet>& location_sets,
    const std::atomic<bool>* cancel = nullptr);

/// Reconstructs the single candidate query at 1-based index `qi` without
/// materializing the whole list (used by tests and by attack tooling).
Result<std::vector<Point>> CandidateQueryAt(
    const PartitionPlan& plan, const std::vector<LocationSet>& location_sets,
    uint64_t qi);

}  // namespace ppgnn

#endif  // PPGNN_CORE_CANDIDATE_H_
