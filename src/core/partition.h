// Partition-parameter solver (Section 4.1, Eqns 7-10).
//
// Chooses the number of subgroups alpha, the segment sizes
// d_bar = (d_1, ..., d_beta), and implied candidate-query count
//
//   delta' = sum_i (d_i)^alpha
//
// minimizing delta' subject to delta' >= delta, sum_i d_i = d, and
// 1 <= alpha <= n. The paper solves this NP-hard integer program offline
// with Bonmin; instances here are tiny (d <= 50, n <= 32), so we find the
// exact optimum by depth-first enumeration of integer partitions of d with
// branch-and-bound pruning, memoized per (n, d, delta).

#ifndef PPGNN_CORE_PARTITION_H_
#define PPGNN_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ppgnn {

/// The solved partition parameters {n_bar, d_bar} plus derived values.
struct PartitionPlan {
  int alpha = 1;                ///< number of subgroups
  std::vector<int> n_bar;      ///< subgroup sizes (sum = n)
  std::vector<int> d_bar;      ///< segment sizes (sum = d), non-increasing
  uint64_t delta_prime = 0;    ///< sum_i d_bar[i]^alpha

  int beta() const { return static_cast<int>(d_bar.size()); }

  /// Absolute position (1-based) of the first slot of segment `seg`
  /// (1-based) within a location set.
  int SegmentOffset(int seg) const;
};

/// Solves Eqns 7-10 exactly. Requires n >= 1, d >= 1, delta >= 1 and
/// delta <= d^n (otherwise no plan exists and the paper directs users to
/// pick a larger d).
Result<PartitionPlan> SolvePartition(int n, int d, int delta);

/// The query index QI of Eqn 12 (1-based position of the real query in
/// the candidate list), given the chosen segment `seg` (1-based) and the
/// per-subgroup relative positions x[j] (1-based, inside the segment).
uint64_t QueryIndex(const PartitionPlan& plan, int seg,
                    const std::vector<int>& x);

/// Total number of candidate queries before segment `seg` (helper shared
/// with candidate enumeration).
uint64_t CandidatesBeforeSegment(const PartitionPlan& plan, int seg);

}  // namespace ppgnn

#endif  // PPGNN_CORE_PARTITION_H_
