// Private selection of the real query's answer from the answer matrix
// (Theorem 3.1) and the two-phase PPGNN-OPT variant (Section 6).
//
// The answer matrix A^{m x delta'} holds one packed-integer column per
// candidate query. Single-phase selection computes, for every row r,
//
//   [a_{*,r}] = (x_r,1 (x) [v_1]) (+) ... (+) (x_r,delta' (x) [v_delta'])
//
// yielding m eps_1 ciphertexts of the real answer. The two-phase variant
// first selects within each of the omega column blocks using [v1] (eps_1),
// then selects the right block by treating those eps_1 ciphertexts as
// eps_2 plaintexts and dotting with [[v2]], yielding m layered eps_2
// ciphertexts.

#ifndef PPGNN_CORE_SELECTION_H_
#define PPGNN_CORE_SELECTION_H_

#include <atomic>
#include <vector>

#include "common/status.h"
#include "core/indicator.h"
#include "crypto/paillier.h"

namespace ppgnn {

/// Column-major answer matrix: columns[c] is candidate c's packed answer,
/// all columns the same height m.
struct AnswerMatrix {
  std::vector<std::vector<BigInt>> columns;

  size_t Cols() const { return columns.size(); }
  size_t Rows() const { return columns.empty() ? 0 : columns[0].size(); }
  Status Validate() const;
};

/// Theorem 3.1: A (x) [v]. Returns m eps_1 ciphertexts.
///
/// With threads > 1, the per-row dot product is computed as partial
/// products over column chunks in parallel and combined with homomorphic
/// Add — bit-identical to the serial result (ciphertext multiplication is
/// commutative and the math is exact). `worker_seconds`, when non-null,
/// receives the CPU time burnt by spawned workers (for cost accounting).
/// `cancel`, when non-null, is a cooperative abort flag polled between
/// per-row dot products; once set the call returns DeadlineExceeded
/// instead of finishing the remaining multi-exponentiations.
Result<std::vector<Ciphertext>> PrivateSelect(
    const Encryptor& enc, const AnswerMatrix& matrix,
    const std::vector<Ciphertext>& indicator, int threads = 1,
    double* worker_seconds = nullptr,
    const std::atomic<bool>* cancel = nullptr);

/// Two-phase selection (Fig 4b). Returns m eps_2 ciphertexts whose
/// plaintexts are eps_1 ciphertexts of the real answer. With threads > 1
/// the omega phase-1 blocks are processed in parallel. `cancel` is polled
/// between phase-1 block rows and phase-2 rows, as in PrivateSelect.
Result<std::vector<Ciphertext>> PrivateSelectTwoPhase(
    const Encryptor& enc, const AnswerMatrix& matrix,
    const OptIndicator& indicator, int threads = 1,
    double* worker_seconds = nullptr,
    const std::atomic<bool>* cancel = nullptr);

}  // namespace ppgnn

#endif  // PPGNN_CORE_SELECTION_H_
