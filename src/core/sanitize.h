// Answer sanitation (Sections 5.2-5.3).
//
// For each candidate query, LSP returns the longest prefix P' of the
// ranked kGNN answer P that is safe against the inequality attack: for
// every target user, the hypothesis test of Eqn 16 must reject
// H0: theta <= theta0 (i.e. prove, with Type I error <= gamma, that the
// attack's solution region exceeds a theta0 fraction of the space).
//
// The length-1 prefix is always safe (no inequalities). LSP tests prefix
// lengths 2, 3, ... and stops at the first unsafe one. The Z-test is
// evaluated with an early-exit sequential wrapper whose accept/reject
// decision is identical to drawing all N_H samples.

#ifndef PPGNN_CORE_SANITIZE_H_
#define PPGNN_CORE_SANITIZE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/aggregate.h"
#include "geo/distance_oracle.h"
#include "spatial/knn.h"
#include "stats/hypothesis.h"

namespace ppgnn {

struct SanitizeStats {
  uint64_t samples_drawn = 0;  ///< Monte-Carlo points tested
  uint64_t tests_run = 0;      ///< (prefix, target-user) Z-tests executed
};

class AnswerSanitizer {
 public:
  /// Fails if Eqn 17 has no valid sample size for (theta0, config).
  static Result<AnswerSanitizer> Create(double theta0,
                                        const TestConfig& config);

  /// N_H from Eqn 17.
  uint64_t sample_size() const { return sample_size_; }
  double theta0() const { return theta0_; }

  /// Longest safe prefix of `answer` for the query at `locations`.
  /// Single-location queries are returned unchanged (no colluders exist).
  /// `oracle` selects the metric (Euclidean when null).
  std::vector<RankedPoi> Sanitize(const std::vector<RankedPoi>& answer,
                                  const std::vector<Point>& locations,
                                  AggregateKind kind, Rng& rng,
                                  SanitizeStats* stats = nullptr,
                                  const DistanceOracle* oracle = nullptr) const;

  /// The per-target safety test: does the Z-test reject H0 (region larger
  /// than theta0) for the attack defined by `colluders` and the prefix?
  bool PrefixSafeForTarget(const std::vector<Point>& colluders,
                           const std::vector<Point>& prefix_points,
                           AggregateKind kind, Rng& rng,
                           SanitizeStats* stats = nullptr,
                           const DistanceOracle* oracle = nullptr) const;

 private:
  AnswerSanitizer(double theta0, TestConfig config, uint64_t sample_size)
      : theta0_(theta0), config_(config), sample_size_(sample_size) {}

  double theta0_;
  TestConfig config_;
  uint64_t sample_size_;
};

}  // namespace ppgnn

#endif  // PPGNN_CORE_SANITIZE_H_
