#include "core/dummy.h"

#include <algorithm>
#include <cmath>

// The real user location must stay indistinguishable from the dummies
// sent alongside it; it must never branch control flow or be logged.
// ppgnn: secret(real)

namespace ppgnn {

Point UniformDummyGenerator::Generate(const Point&, Rng& rng) const {
  return {rng.NextDouble(), rng.NextDouble()};
}

PoiDensityDummyGenerator::PoiDensityDummyGenerator(
    const std::vector<Poi>& pois, int grid)
    : grid_(std::max(grid, 1)) {
  std::vector<double> counts(static_cast<size_t>(grid_) * grid_, 1.0);
  for (const Poi& poi : pois) {
    int cx = std::min(grid_ - 1, static_cast<int>(poi.location.x * grid_));
    int cy = std::min(grid_ - 1, static_cast<int>(poi.location.y * grid_));
    counts[static_cast<size_t>(cy) * grid_ + cx] += 1.0;
  }
  double total = 0;
  for (double c : counts) total += c;
  mass_.resize(counts.size());
  cumulative_.resize(counts.size());
  double acc = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    mass_[i] = counts[i] / total;
    acc += mass_[i];
    cumulative_[i] = acc;
  }
  cumulative_.back() = 1.0;  // guard against rounding
}

Point PoiDensityDummyGenerator::Generate(const Point&, Rng& rng) const {
  double pick = rng.NextDouble();
  size_t cell = static_cast<size_t>(
      std::lower_bound(cumulative_.begin(), cumulative_.end(), pick) -
      cumulative_.begin());
  if (cell >= mass_.size()) cell = mass_.size() - 1;
  int cx = static_cast<int>(cell % static_cast<size_t>(grid_));
  int cy = static_cast<int>(cell / static_cast<size_t>(grid_));
  double w = 1.0 / grid_;
  return {cx * w + rng.NextDouble() * w, cy * w + rng.NextDouble() * w};
}

double PoiDensityDummyGenerator::CellMass(const Point& p) const {
  int cx = std::min(grid_ - 1, std::max(0, static_cast<int>(p.x * grid_)));
  int cy = std::min(grid_ - 1, std::max(0, static_cast<int>(p.y * grid_)));
  return mass_[static_cast<size_t>(cy) * grid_ + cx];
}

Point NearbyDummyGenerator::Generate(const Point& real, Rng& rng) const {
  auto clamp01 = [](double v) { return std::min(1.0, std::max(0.0, v)); };
  return {clamp01(real.x + sigma_ * rng.NextGaussian()),
          clamp01(real.y + sigma_ * rng.NextGaussian())};
}

const DummyGenerator& UniformDummies() {
  static const UniformDummyGenerator* kGenerator =
      new UniformDummyGenerator();
  return *kGenerator;
}

}  // namespace ppgnn
