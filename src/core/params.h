// Protocol parameter bundle (Table 3 of the paper) shared by all PPGNN
// variants.

#ifndef PPGNN_CORE_PARAMS_H_
#define PPGNN_CORE_PARAMS_H_

#include "common/status.h"
#include "core/dummy.h"
#include "geo/aggregate.h"
#include "stats/hypothesis.h"

namespace ppgnn {

/// Parameters of one privacy-preserving kGNN query. Defaults follow the
/// paper's defaults for the group scenario (Table 3) except key_bits,
/// which callers choose (the paper uses 1024; tests use smaller keys).
struct ProtocolParams {
  int n = 8;             ///< group size (>= 1)
  int d = 25;            ///< Privacy I anonymity parameter (> 1)
  int delta = 100;       ///< Privacy II parameter (>= d); ignored when n == 1
  int k = 8;             ///< POIs to retrieve (>= 1)
  double theta0 = 0.05;  ///< Privacy IV parameter, fraction of space in (0,1]
  int key_bits = 1024;   ///< Paillier modulus bits (even, >= 128)
  AggregateKind aggregate = AggregateKind::kSum;
  TestConfig test;       ///< gamma / eta / phi for answer sanitation
  /// When false, skips answer sanitation entirely — the PPGNN-NAS variant
  /// of Section 8.3.2 (Privacy IV only under no-collusion).
  bool sanitize = true;
  /// Dummy-location policy for the users' location sets; null means
  /// uniform over the unit square. Must outlive the query.
  const DummyGenerator* dummy_generator = nullptr;
  /// Worker threads for the LSP's per-candidate processing (kGNN +
  /// sanitation + encoding). The reported LSP cost is total CPU work, so
  /// it is invariant to this knob; wall-clock time is not (see
  /// bench_ablation_parallel_lsp).
  int lsp_threads = 1;
  /// Blinding factors the coordinator precomputes per ciphertext level
  /// before the timed user phase (the offline half of the offline/online
  /// encryption split; see DESIGN.md section 12). 0 = encrypt online via
  /// the fixed-base engine. The reported user cost excludes the offline
  /// refill, mirroring how a phone would precompute while idle.
  int blinding_pool = 0;

  /// The effective Privacy II parameter: delta for groups, d for n == 1
  /// (Section 3: delta = d in the single-user case).
  int EffectiveDelta() const { return n == 1 ? d : delta; }

  Status Validate() const;
};

}  // namespace ppgnn

#endif  // PPGNN_CORE_PARAMS_H_
