#include "core/partition.h"

#include <algorithm>
#include <map>
#include <mutex>

namespace ppgnn {
namespace {

constexpr uint64_t kSaturated = ~0ULL;

// base^exp with saturation (exp >= 1).
uint64_t SatPow(uint64_t base, int exp) {
  uint64_t out = 1;
  for (int i = 0; i < exp; ++i) {
    if (base != 0 && out > kSaturated / base) return kSaturated;
    out *= base;
  }
  return out;
}

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return a > kSaturated - b ? kSaturated : a + b;
}

// Depth-first search over partitions of `remaining` with parts
// <= max_part, accumulating sum of part^alpha. Minimizes the total
// subject to total >= delta. `best` carries the incumbent.
struct Search {
  int alpha;
  uint64_t delta;
  uint64_t best_value = kSaturated;
  std::vector<int> best_parts;
  std::vector<int> current;

  void Run(int remaining, int max_part, uint64_t sum) {
    if (remaining == 0) {
      if (sum >= delta && sum < best_value) {
        best_value = sum;
        best_parts = current;
      }
      return;
    }
    // Bound 1: every remaining unit contributes at least 1^alpha each, so
    // the final total is at least sum + remaining. Prune if that already
    // meets or exceeds the incumbent AND cannot beat it.
    if (SatAdd(sum, static_cast<uint64_t>(remaining)) >= best_value) return;
    // Bound 2: the largest reachable total uses parts of size max_part.
    uint64_t max_reachable = sum;
    int r = remaining;
    while (r > 0) {
      int part = std::min(r, max_part);
      max_reachable = SatAdd(max_reachable, SatPow(part, alpha));
      r -= part;
    }
    if (max_reachable < delta) return;  // infeasible down this branch

    for (int part = std::min(max_part, remaining); part >= 1; --part) {
      uint64_t term = SatPow(part, alpha);
      current.push_back(part);
      Run(remaining - part, part, SatAdd(sum, term));
      current.pop_back();
    }
  }
};

std::vector<int> BalancedComposition(int total, int parts) {
  std::vector<int> out(parts, total / parts);
  for (int i = 0; i < total % parts; ++i) ++out[i];
  return out;
}

struct CacheKey {
  int n, d, delta;
  bool operator<(const CacheKey& o) const {
    return std::tie(n, d, delta) < std::tie(o.n, o.d, o.delta);
  }
};

}  // namespace

int PartitionPlan::SegmentOffset(int seg) const {
  int offset = 1;
  for (int i = 1; i < seg; ++i) offset += d_bar[i - 1];
  return offset;
}

Result<PartitionPlan> SolvePartition(int n, int d, int delta) {
  if (n < 1 || d < 1 || delta < 1)
    return Status::InvalidArgument("n, d, delta must all be >= 1");
  if (SatPow(static_cast<uint64_t>(d), n) < static_cast<uint64_t>(delta)) {
    return Status::InvalidArgument(
        "delta > d^n: no candidate-query plan exists; users must pick a "
        "larger d");
  }

  // The solver is deterministic; memoize results across queries (the paper
  // likewise precomputes plans for frequently used (n, d, delta)).
  static std::mutex cache_mutex;
  static std::map<CacheKey, PartitionPlan>* cache =
      new std::map<CacheKey, PartitionPlan>();
  {
    std::lock_guard<std::mutex> lock(cache_mutex);
    auto it = cache->find({n, d, delta});
    if (it != cache->end()) return it->second;
  }

  PartitionPlan best;
  uint64_t best_value = kSaturated;
  for (int alpha = 1; alpha <= n; ++alpha) {
    Search search;
    search.alpha = alpha;
    search.delta = static_cast<uint64_t>(delta);
    // Seed the incumbent with the current global best so pruning carries
    // across alpha values.
    search.best_value = best_value;
    search.Run(d, d, 0);
    if (search.best_value < best_value && !search.best_parts.empty()) {
      best_value = search.best_value;
      best.alpha = alpha;
      best.d_bar = search.best_parts;  // non-increasing by construction
      best.delta_prime = search.best_value;
    }
  }
  if (best_value == kSaturated)
    return Status::Internal("partition search found no feasible plan");
  best.n_bar = BalancedComposition(n, best.alpha);

  {
    std::lock_guard<std::mutex> lock(cache_mutex);
    (*cache)[{n, d, delta}] = best;
  }
  return best;
}

uint64_t CandidatesBeforeSegment(const PartitionPlan& plan, int seg) {
  uint64_t total = 0;
  for (int i = 1; i < seg; ++i) {
    total += SatPow(static_cast<uint64_t>(plan.d_bar[i - 1]), plan.alpha);
  }
  return total;
}

uint64_t QueryIndex(const PartitionPlan& plan, int seg,
                    const std::vector<int>& x) {
  uint64_t index = CandidatesBeforeSegment(plan, seg);
  uint64_t d_seg = static_cast<uint64_t>(plan.d_bar[seg - 1]);
  for (int j = 1; j <= plan.alpha; ++j) {
    index += static_cast<uint64_t>(x[j - 1] - 1) *
             SatPow(d_seg, plan.alpha - j);
  }
  return index + 1;
}

}  // namespace ppgnn
