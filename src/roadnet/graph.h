// Road-network substrate: an undirected weighted graph embedded in the
// unit square.
//
// Definition 2.1 of the paper allows road-network distance as the metric
// `dis` (citing Yiu et al., TKDE 2005). This module provides the network
// itself; shortest paths live in dijkstra.h and the kGNN engine over the
// network in road_gnn.h.
//
// Synthetic networks: BuildGrid produces a perturbed lattice with a
// fraction of edges knocked out (but guaranteed connected), a standard
// stand-in for a city street network when no real one is available.

#ifndef PPGNN_ROADNET_GRAPH_H_
#define PPGNN_ROADNET_GRAPH_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/point.h"

namespace ppgnn {

struct RoadEdge {
  uint32_t to = 0;
  double weight = 0.0;
};

class RoadNetwork {
 public:
  /// A jittered cols x rows lattice over the unit square. `drop_fraction`
  /// of the non-bridging edges are removed at random to break the grid's
  /// regularity; the result is always connected.
  static RoadNetwork BuildGrid(int cols, int rows, Rng& rng,
                               double jitter = 0.3, double drop_fraction = 0.2);

  /// A network from explicit nodes and undirected edges; edge weights are
  /// the Euclidean length of the segment. Rejects out-of-range endpoints
  /// and self-loops.
  static Result<RoadNetwork> FromEdges(
      std::vector<Point> node_locations,
      const std::vector<std::pair<uint32_t, uint32_t>>& edges);

  size_t NodeCount() const { return nodes_.size(); }
  size_t EdgeCount() const { return edge_count_; }
  const std::vector<Point>& nodes() const { return nodes_; }
  const std::vector<std::vector<RoadEdge>>& adjacency() const {
    return adjacency_;
  }

  /// The node nearest to `p` (Euclidean snap). Requires a non-empty
  /// network.
  uint32_t NearestNode(const Point& p) const;

  /// True iff every node is reachable from node 0 (or the network is
  /// empty).
  bool IsConnected() const;

 private:
  void AddEdge(uint32_t a, uint32_t b, double weight);

  std::vector<Point> nodes_;
  std::vector<std::vector<RoadEdge>> adjacency_;
  size_t edge_count_ = 0;

  // Uniform grid hash over node indices for fast NearestNode.
  void BuildSnapIndex();
  int snap_grid_ = 0;
  std::vector<std::vector<uint32_t>> snap_cells_;
};

}  // namespace ppgnn

#endif  // PPGNN_ROADNET_GRAPH_H_
