#include "roadnet/road_gnn.h"

#include <algorithm>
#include <limits>

namespace ppgnn {

const std::vector<double>& RoadDistanceOracle::SsspFor(uint32_t source) const {
  // References into an unordered_map stay valid across inserts, so the
  // returned reference is safe to use outside the lock.
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = cache_.find(source);
  if (it == cache_.end()) {
    it = cache_.emplace(source, ShortestPathsFrom(*net_, source)).first;
  }
  return it->second;
}

double RoadDistanceOracle::Distance(const Point& a, const Point& b) const {
  uint32_t from = net_->NearestNode(a);
  uint32_t to = net_->NearestNode(b);
  return SsspFor(from)[to];
}

RoadGnnSolver::RoadGnnSolver(const RoadNetwork* net,
                             const std::vector<Poi>* pois)
    : net_(net), pois_(pois) {
  poi_nodes_.reserve(pois_->size());
  for (const Poi& poi : *pois_) {
    poi_nodes_.push_back(net_->NearestNode(poi.location));
  }
}

std::vector<RankedPoi> RoadGnnSolver::Query(const std::vector<Point>& queries,
                                            int k, AggregateKind kind) const {
  std::vector<RankedPoi> out;
  if (queries.empty() || k <= 0 || pois_->empty()) return out;

  // One SSSP tree per user.
  std::vector<std::vector<double>> sssp;
  sssp.reserve(queries.size());
  for (const Point& q : queries) {
    sssp.push_back(ShortestPathsFrom(*net_, net_->NearestNode(q)));
  }

  std::vector<RankedPoi> all;
  all.reserve(pois_->size());
  for (size_t i = 0; i < pois_->size(); ++i) {
    uint32_t node = poi_nodes_[i];
    double cost = 0.0;
    switch (kind) {
      case AggregateKind::kSum: {
        cost = 0.0;
        for (const auto& d : sssp) cost += d[node];
        break;
      }
      case AggregateKind::kMax: {
        cost = 0.0;
        for (const auto& d : sssp) cost = std::max(cost, d[node]);
        break;
      }
      case AggregateKind::kMin: {
        cost = std::numeric_limits<double>::infinity();
        for (const auto& d : sssp) cost = std::min(cost, d[node]);
        break;
      }
    }
    all.push_back({(*pois_)[i], cost});
  }
  std::sort(all.begin(), all.end(), [](const RankedPoi& a, const RankedPoi& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.poi.id < b.poi.id;
  });
  size_t take = std::min<size_t>(static_cast<size_t>(k), all.size());
  out.assign(all.begin(), all.begin() + take);
  return out;
}

}  // namespace ppgnn
