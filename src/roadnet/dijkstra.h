// Shortest paths over a RoadNetwork (binary-heap Dijkstra).

#ifndef PPGNN_ROADNET_DIJKSTRA_H_
#define PPGNN_ROADNET_DIJKSTRA_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "roadnet/graph.h"

namespace ppgnn {

/// Distances from `source` to every node; unreachable nodes get +inf.
std::vector<double> ShortestPathsFrom(const RoadNetwork& net, uint32_t source);

/// Point-to-point network distance (single Dijkstra with early exit).
/// +inf if unreachable; error on out-of-range node ids.
Result<double> ShortestPathDistance(const RoadNetwork& net, uint32_t from,
                                    uint32_t to);

}  // namespace ppgnn

#endif  // PPGNN_ROADNET_DIJKSTRA_H_
