#include "roadnet/dijkstra.h"

#include <limits>
#include <queue>

namespace ppgnn {
namespace {

using HeapEntry = std::pair<double, uint32_t>;  // (distance, node)

}  // namespace

std::vector<double> ShortestPathsFrom(const RoadNetwork& net,
                                      uint32_t source) {
  std::vector<double> dist(net.NodeCount(),
                           std::numeric_limits<double>::infinity());
  if (source >= net.NodeCount()) return dist;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (d > dist[node]) continue;  // stale entry
    for (const RoadEdge& e : net.adjacency()[node]) {
      double candidate = d + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.push({candidate, e.to});
      }
    }
  }
  return dist;
}

Result<double> ShortestPathDistance(const RoadNetwork& net, uint32_t from,
                                    uint32_t to) {
  if (from >= net.NodeCount() || to >= net.NodeCount())
    return Status::InvalidArgument("node id out of range");
  std::vector<double> dist(net.NodeCount(),
                           std::numeric_limits<double>::infinity());
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap;
  dist[from] = 0.0;
  heap.push({0.0, from});
  while (!heap.empty()) {
    auto [d, node] = heap.top();
    heap.pop();
    if (node == to) return d;
    if (d > dist[node]) continue;
    for (const RoadEdge& e : net.adjacency()[node]) {
      double candidate = d + e.weight;
      if (candidate < dist[e.to]) {
        dist[e.to] = candidate;
        heap.push({candidate, e.to});
      }
    }
  }
  return dist[to];
}

}  // namespace ppgnn
