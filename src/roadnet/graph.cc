#include "roadnet/graph.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ppgnn {

void RoadNetwork::AddEdge(uint32_t a, uint32_t b, double weight) {
  adjacency_[a].push_back({b, weight});
  adjacency_[b].push_back({a, weight});
  ++edge_count_;
}

RoadNetwork RoadNetwork::BuildGrid(int cols, int rows, Rng& rng,
                                   double jitter, double drop_fraction) {
  RoadNetwork net;
  const double dx = 1.0 / std::max(cols - 1, 1);
  const double dy = 1.0 / std::max(rows - 1, 1);
  net.nodes_.reserve(static_cast<size_t>(cols) * rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double jx = (rng.NextDouble() - 0.5) * jitter * dx;
      double jy = (rng.NextDouble() - 0.5) * jitter * dy;
      net.nodes_.push_back({std::min(1.0, std::max(0.0, c * dx + jx)),
                            std::min(1.0, std::max(0.0, r * dy + jy))});
    }
  }
  net.adjacency_.resize(net.nodes_.size());
  auto id = [cols](int r, int c) {
    return static_cast<uint32_t>(r * cols + c);
  };
  // A comb skeleton keeps the network connected regardless of the drop
  // rate: the first row's horizontal edges form the spine and every
  // vertical edge is a tooth; only the remaining horizontal edges are
  // subject to random removal.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        bool spine = r == 0;
        if (spine || rng.NextDouble() >= drop_fraction) {
          net.AddEdge(id(r, c), id(r, c + 1),
                      Distance(net.nodes_[id(r, c)], net.nodes_[id(r, c + 1)]));
        }
      }
      if (r + 1 < rows) {
        net.AddEdge(id(r, c), id(r + 1, c),
                    Distance(net.nodes_[id(r, c)], net.nodes_[id(r + 1, c)]));
      }
    }
  }
  net.BuildSnapIndex();
  return net;
}

Result<RoadNetwork> RoadNetwork::FromEdges(
    std::vector<Point> node_locations,
    const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  RoadNetwork net;
  net.nodes_ = std::move(node_locations);
  net.adjacency_.resize(net.nodes_.size());
  for (const auto& [a, b] : edges) {
    if (a >= net.nodes_.size() || b >= net.nodes_.size())
      return Status::InvalidArgument("edge endpoint out of range");
    if (a == b) return Status::InvalidArgument("self-loop edge");
    net.AddEdge(a, b, Distance(net.nodes_[a], net.nodes_[b]));
  }
  net.BuildSnapIndex();
  return net;
}

void RoadNetwork::BuildSnapIndex() {
  if (nodes_.empty()) return;
  snap_grid_ = std::max(
      1, static_cast<int>(std::sqrt(static_cast<double>(nodes_.size()) / 2)));
  snap_cells_.assign(static_cast<size_t>(snap_grid_) * snap_grid_, {});
  for (uint32_t i = 0; i < nodes_.size(); ++i) {
    int cx = std::min(snap_grid_ - 1,
                      static_cast<int>(nodes_[i].x * snap_grid_));
    int cy = std::min(snap_grid_ - 1,
                      static_cast<int>(nodes_[i].y * snap_grid_));
    snap_cells_[static_cast<size_t>(cy) * snap_grid_ + cx].push_back(i);
  }
}

uint32_t RoadNetwork::NearestNode(const Point& p) const {
  // Expanding ring search over the snap grid.
  int cx = std::min(snap_grid_ - 1,
                    std::max(0, static_cast<int>(p.x * snap_grid_)));
  int cy = std::min(snap_grid_ - 1,
                    std::max(0, static_cast<int>(p.y * snap_grid_)));
  uint32_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (int ring = 0; ring < snap_grid_; ++ring) {
    bool any_cell = false;
    for (int y = cy - ring; y <= cy + ring; ++y) {
      for (int x = cx - ring; x <= cx + ring; ++x) {
        if (x < 0 || y < 0 || x >= snap_grid_ || y >= snap_grid_) continue;
        if (std::max(std::abs(x - cx), std::abs(y - cy)) != ring) continue;
        any_cell = true;
        for (uint32_t i :
             snap_cells_[static_cast<size_t>(y) * snap_grid_ + x]) {
          double dist = Distance(p, nodes_[i]);
          if (dist < best_dist) {
            best_dist = dist;
            best = i;
          }
        }
      }
    }
    // One extra ring after the first hit guarantees correctness (a node in
    // the next ring can still be closer than one in the current ring).
    if (best_dist < std::numeric_limits<double>::infinity() && ring > 0 &&
        best_dist < (static_cast<double>(ring) - 1) / snap_grid_) {
      break;
    }
    if (!any_cell && ring > 2 * snap_grid_) break;
  }
  return best;
}

bool RoadNetwork::IsConnected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<uint32_t> stack = {0};
  seen[0] = true;
  size_t visited = 1;
  while (!stack.empty()) {
    uint32_t node = stack.back();
    stack.pop_back();
    for (const RoadEdge& e : adjacency_[node]) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        ++visited;
        stack.push_back(e.to);
      }
    }
  }
  return visited == nodes_.size();
}

}  // namespace ppgnn
