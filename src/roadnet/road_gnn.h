// kGNN over road-network distance, plus the matching DistanceOracle.
//
// RoadGnnSolver is a drop-in replacement for the Euclidean MBM engine:
// the PPGNN protocol treats query answering as a black box, so swapping
// this in gives the road-network variant of the paper's Definition 2.1
// without touching any privacy machinery. Distances are network shortest
// paths between snapped nodes.
//
// RoadDistanceOracle memoizes one single-source shortest-path tree per
// distinct source node, so the sanitation Monte-Carlo (millions of probe
// points against a handful of fixed answer POIs) costs one table lookup
// per probe after the first sample.

#ifndef PPGNN_ROADNET_ROAD_GNN_H_
#define PPGNN_ROADNET_ROAD_GNN_H_

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "geo/distance_oracle.h"
#include "roadnet/dijkstra.h"
#include "roadnet/graph.h"
#include "spatial/gnn.h"

namespace ppgnn {

/// Network metric with per-source SSSP memoization. Thread-SAFE: the
/// cache is mutex-guarded so a parallel LSP can sanitize concurrently.
class RoadDistanceOracle : public DistanceOracle {
 public:
  explicit RoadDistanceOracle(const RoadNetwork* net) : net_(net) {}

  double Distance(const Point& a, const Point& b) const override;
  const char* name() const override { return "road-network"; }

  size_t CachedSources() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.size();
  }

 private:
  const std::vector<double>& SsspFor(uint32_t source) const;

  const RoadNetwork* net_;
  mutable std::mutex cache_mutex_;
  mutable std::unordered_map<uint32_t, std::vector<double>> cache_;
};

/// Plaintext kGNN engine under road-network distance: one Dijkstra per
/// query location, then a scan over the (pre-snapped) POIs.
class RoadGnnSolver : public GnnSolver {
 public:
  /// Both pointees must outlive the solver. POIs are snapped to network
  /// nodes once at construction.
  RoadGnnSolver(const RoadNetwork* net, const std::vector<Poi>* pois);

  std::vector<RankedPoi> Query(const std::vector<Point>& queries, int k,
                               AggregateKind kind) const override;
  const char* name() const override { return "RoadGNN"; }

 private:
  const RoadNetwork* net_;
  const std::vector<Poi>* pois_;
  std::vector<uint32_t> poi_nodes_;  // snap of each POI
};

}  // namespace ppgnn

#endif  // PPGNN_ROADNET_ROAD_GNN_H_
