// Standard normal distribution utilities: CDF, inverse CDF (quantile), and
// the one-tailed critical values z_gamma used by the paper's answer
// sanitation (Section 5.3).

#ifndef PPGNN_STATS_NORMAL_H_
#define PPGNN_STATS_NORMAL_H_

namespace ppgnn {

/// P(Z <= z) for Z ~ N(0, 1).
double NormalCdf(double z);

/// Quantile function: the z with NormalCdf(z) = p, for p in (0, 1).
/// Acklam's rational approximation refined by one Halley step; absolute
/// error < 1e-9 over (1e-300, 1 - 1e-16).
double NormalQuantile(double p);

/// Upper-tail critical value z_gamma: P(Z > z_gamma) = gamma.
/// (z_0.05 ≈ 1.645, z_0.2 ≈ 0.842.)
double UpperCritical(double gamma);

}  // namespace ppgnn

#endif  // PPGNN_STATS_NORMAL_H_
