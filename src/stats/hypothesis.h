// One-tailed proportion hypothesis test used by the answer sanitation
// (Section 5.3 of the paper).
//
// H0: theta <= theta0   vs   H1: theta > theta0
//
// where theta is the (unknown) relative area of the inequality-attack
// solution region. LSP draws N_H uniform samples from the data space,
// counts successes X (samples inside the region), and rejects H0 when
//
//   X > N_H * theta0 + z_gamma * sqrt(N_H * theta0 * (1 - theta0))   (Eqn 16)
//
// Rejecting H0 means the region is large, i.e. the prefix is SAFE for
// Privacy IV with confidence 1 - gamma. The sample size bounding both
// error probabilities is Fleiss's rule (Theorem 5.1 / Eqn 17):
//
//   N_H >= ((z_gamma*sqrt(theta0(1-theta0)) + z_eta*sqrt(theta1(1-theta1)))
//           / (theta1 - theta0))^2,    theta1 = theta0 * (1 + phi).

#ifndef PPGNN_STATS_HYPOTHESIS_H_
#define PPGNN_STATS_HYPOTHESIS_H_

#include <cstdint>

#include "common/status.h"

namespace ppgnn {

/// Error-probability configuration. Defaults are the paper's "commonly
/// used" gamma = 0.05, eta = 0.2, phi = 0.1.
struct TestConfig {
  double gamma = 0.05;  // Type I error bound
  double eta = 0.2;     // Type II error bound
  double phi = 0.1;     // ratio gap: theta1 = theta0 * (1 + phi)
};

/// Sample size from Eqn 17. theta0 in (0, 1), theta0 * (1 + phi) < 1.
Result<uint64_t> RequiredSampleSize(double theta0, const TestConfig& config);

/// The rejection threshold of Eqn 16: reject H0 iff X > threshold.
double RejectionThreshold(uint64_t n_samples, double theta0, double gamma);

/// Convenience: was H0 rejected (region provably larger than theta0)?
bool RejectsH0(uint64_t successes, uint64_t n_samples, double theta0,
               double gamma);

/// Incremental tester with early exit: feed Bernoulli outcomes one at a
/// time; Verdict() becomes definite as soon as the final decision cannot
/// change (threshold already crossed, or unreachable with the remaining
/// samples). The decision is identical to running all N_H samples.
class SequentialProportionTest {
 public:
  SequentialProportionTest(uint64_t n_samples, double theta0, double gamma);

  enum class Verdict { kUndecided, kReject, kNotReject };

  /// Records one sample outcome; returns the (possibly now decided)
  /// verdict. Feeding more than n_samples outcomes is an error in the
  /// caller; extra calls are ignored once decided.
  Verdict AddSample(bool success);

  Verdict CurrentVerdict() const;

  uint64_t samples_used() const { return used_; }
  uint64_t successes() const { return successes_; }
  uint64_t total_samples() const { return n_samples_; }

 private:
  uint64_t n_samples_;
  double threshold_;
  uint64_t used_ = 0;
  uint64_t successes_ = 0;
};

}  // namespace ppgnn

#endif  // PPGNN_STATS_HYPOTHESIS_H_
