#include "stats/hypothesis.h"

#include <cmath>

#include "stats/normal.h"

namespace ppgnn {

Result<uint64_t> RequiredSampleSize(double theta0, const TestConfig& config) {
  if (theta0 <= 0.0 || theta0 >= 1.0)
    return Status::InvalidArgument("theta0 must lie in (0, 1)");
  double theta1 = theta0 * (1.0 + config.phi);
  if (theta1 >= 1.0)
    return Status::InvalidArgument("theta0 * (1 + phi) must be < 1");
  if (config.gamma <= 0.0 || config.gamma >= 1.0 || config.eta <= 0.0 ||
      config.eta >= 1.0)
    return Status::InvalidArgument("gamma and eta must lie in (0, 1)");
  double z_gamma = UpperCritical(config.gamma);
  double z_eta = UpperCritical(config.eta);
  double numerator = z_gamma * std::sqrt(theta0 * (1 - theta0)) +
                     z_eta * std::sqrt(theta1 * (1 - theta1));
  double root = numerator / (theta1 - theta0);
  return static_cast<uint64_t>(std::ceil(root * root));
}

double RejectionThreshold(uint64_t n_samples, double theta0, double gamma) {
  double n = static_cast<double>(n_samples);
  return n * theta0 +
         UpperCritical(gamma) * std::sqrt(n * theta0 * (1 - theta0));
}

bool RejectsH0(uint64_t successes, uint64_t n_samples, double theta0,
               double gamma) {
  return static_cast<double>(successes) >
         RejectionThreshold(n_samples, theta0, gamma);
}

SequentialProportionTest::SequentialProportionTest(uint64_t n_samples,
                                                   double theta0, double gamma)
    : n_samples_(n_samples),
      threshold_(RejectionThreshold(n_samples, theta0, gamma)) {}

SequentialProportionTest::Verdict SequentialProportionTest::AddSample(
    bool success) {
  if (CurrentVerdict() == Verdict::kUndecided && used_ < n_samples_) {
    ++used_;
    if (success) ++successes_;
  }
  return CurrentVerdict();
}

SequentialProportionTest::Verdict SequentialProportionTest::CurrentVerdict()
    const {
  if (static_cast<double>(successes_) > threshold_) return Verdict::kReject;
  // Even if every remaining sample succeeded, could we still reject?
  uint64_t remaining = n_samples_ - used_;
  if (static_cast<double>(successes_ + remaining) <= threshold_)
    return Verdict::kNotReject;
  if (used_ == n_samples_) return Verdict::kNotReject;
  return Verdict::kUndecided;
}

}  // namespace ppgnn
