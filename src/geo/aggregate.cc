#include "geo/aggregate.h"

#include <algorithm>
#include <limits>

namespace ppgnn {

Result<AggregateKind> AggregateKindFromString(const std::string& name) {
  if (name == "sum") return AggregateKind::kSum;
  if (name == "max") return AggregateKind::kMax;
  if (name == "min") return AggregateKind::kMin;
  return Status::InvalidArgument("unknown aggregate function: " + name);
}

const char* AggregateKindToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kMin:
      return "min";
  }
  return "unknown";
}

namespace {

template <typename DistFn>
double Fold(AggregateKind kind, const std::vector<Point>& queries,
            DistFn&& dist) {
  switch (kind) {
    case AggregateKind::kSum: {
      double total = 0.0;
      for (const Point& q : queries) total += dist(q);
      return total;
    }
    case AggregateKind::kMax: {
      double best = 0.0;
      for (const Point& q : queries) best = std::max(best, dist(q));
      return best;
    }
    case AggregateKind::kMin: {
      double best = std::numeric_limits<double>::infinity();
      for (const Point& q : queries) best = std::min(best, dist(q));
      return best;
    }
  }
  return 0.0;
}

}  // namespace

double AggregateCost(AggregateKind kind, const Point& p,
                     const std::vector<Point>& queries) {
  return Fold(kind, queries, [&](const Point& q) { return Distance(p, q); });
}

double AggregateMinDistance(AggregateKind kind, const Rect& box,
                            const std::vector<Point>& queries) {
  return Fold(kind, queries,
              [&](const Point& q) { return MinDistance(q, box); });
}

double AggregateMaxDistance(AggregateKind kind, const Rect& box,
                            const std::vector<Point>& queries) {
  return Fold(kind, queries,
              [&](const Point& q) { return MaxDistance(q, box); });
}

}  // namespace ppgnn
