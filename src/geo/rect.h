// Axis-aligned rectangles (minimum bounding rectangles) with the
// point-to-rectangle distance bounds used by R-tree search and by the MBM
// group nearest neighbor algorithm.

#ifndef PPGNN_GEO_RECT_H_
#define PPGNN_GEO_RECT_H_

#include <algorithm>
#include <ostream>

#include "geo/point.h"

namespace ppgnn {

/// Closed axis-aligned rectangle [min_x, max_x] x [min_y, max_y].
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  /// Degenerate rectangle covering a single point.
  static Rect FromPoint(const Point& p) { return {p.x, p.y, p.x, p.y}; }

  /// An "empty" rectangle that acts as the identity for Union.
  static Rect Empty() {
    return {1e300, 1e300, -1e300, -1e300};
  }

  bool IsEmpty() const { return min_x > max_x || min_y > max_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const Rect& o) const {
    return !(o.min_x > max_x || o.max_x < min_x || o.min_y > max_y ||
             o.max_y < min_y);
  }

  /// Smallest rectangle covering both.
  Rect Union(const Rect& o) const {
    if (IsEmpty()) return o;
    if (o.IsEmpty()) return *this;
    return {std::min(min_x, o.min_x), std::min(min_y, o.min_y),
            std::max(max_x, o.max_x), std::max(max_y, o.max_y)};
  }

  void ExpandToInclude(const Point& p) {
    *this = Union(FromPoint(p));
  }

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  double Perimeter() const { return IsEmpty() ? 0.0 : 2 * (Width() + Height()); }
  Point Center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.min_x << "," << r.min_y << " .. " << r.max_x << ","
            << r.max_y << "]";
}

/// Minimum distance from p to any point of r (0 if inside).
inline double MinDistance(const Point& p, const Rect& r) {
  double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

/// Maximum distance from p to any point of r (the far corner).
inline double MaxDistance(const Point& p, const Rect& r) {
  double dx = std::max(std::abs(p.x - r.min_x), std::abs(p.x - r.max_x));
  double dy = std::max(std::abs(p.y - r.min_y), std::abs(p.y - r.max_y));
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace ppgnn

#endif  // PPGNN_GEO_RECT_H_
