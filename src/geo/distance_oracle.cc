#include "geo/distance_oracle.h"

namespace ppgnn {

const DistanceOracle& EuclideanOracle() {
  static const EuclideanDistanceOracle* kOracle =
      new EuclideanDistanceOracle();
  return *kOracle;
}

}  // namespace ppgnn
