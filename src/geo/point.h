// Planar geometry primitives: points and Euclidean distance.
//
// The paper's experiments normalize the POI space into a unit square; all
// coordinates in this library live in [0, 1] x [0, 1] unless noted.

#ifndef PPGNN_GEO_POINT_H_
#define PPGNN_GEO_POINT_H_

#include <cmath>
#include <cstdint>
#include <ostream>

namespace ppgnn {

/// A 2-D location.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

/// Squared Euclidean distance (cheaper; monotone in the true distance).
inline double SquaredDistance(const Point& a, const Point& b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance.
inline double Distance(const Point& a, const Point& b) {
  return std::sqrt(SquaredDistance(a, b));
}

/// A POI: a location plus a stable identifier into the LSP database.
struct Poi {
  uint32_t id = 0;
  Point location;
};

}  // namespace ppgnn

#endif  // PPGNN_GEO_POINT_H_
