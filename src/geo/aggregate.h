// Aggregate cost functions F over per-user distances (Eqn 1 of the paper).
//
// F(p, C) = F(dis(p, l_1), ..., dis(p, l_n)) for a POI p and query
// locations C. F must be monotonically increasing in each argument; the
// paper evaluates sum (default), max, and min.

#ifndef PPGNN_GEO_AGGREGATE_H_
#define PPGNN_GEO_AGGREGATE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace ppgnn {

enum class AggregateKind {
  kSum,
  kMax,
  kMin,
};

Result<AggregateKind> AggregateKindFromString(const std::string& name);
const char* AggregateKindToString(AggregateKind kind);

/// Evaluates F(p, C) for a candidate POI location against query locations.
double AggregateCost(AggregateKind kind, const Point& p,
                     const std::vector<Point>& queries);

/// A lower bound on F(q, C) over all q inside `box` — the MBM pruning
/// bound: amindist(box, C) = F(mindist(box, l_1), ..., mindist(box, l_n)).
/// Valid because F is monotone in each per-user distance.
double AggregateMinDistance(AggregateKind kind, const Rect& box,
                            const std::vector<Point>& queries);

/// An upper bound on F(q, C) over all q inside `box` (used by IPPF-style
/// candidate filtering): F(maxdist(box, l_1), ..., maxdist(box, l_n)).
double AggregateMaxDistance(AggregateKind kind, const Rect& box,
                            const std::vector<Point>& queries);

}  // namespace ppgnn

#endif  // PPGNN_GEO_AGGREGATE_H_
