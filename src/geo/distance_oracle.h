// Pluggable spatial distance (the paper's `dis`, Section 2.1).
//
// The kGNN problem is defined over any metric: the paper's experiments
// use Euclidean distance, but Definition 2.1 explicitly allows e.g.
// road-network distance. The privacy machinery (inequality attack,
// answer sanitation) folds per-user distances through this interface so
// it works unchanged under any metric; the Euclidean implementation is
// the default everywhere.

#ifndef PPGNN_GEO_DISTANCE_ORACLE_H_
#define PPGNN_GEO_DISTANCE_ORACLE_H_

#include "geo/point.h"

namespace ppgnn {

/// Abstract spatial metric. Implementations must be thread-compatible;
/// Distance may be called many millions of times (Monte-Carlo sampling),
/// so implementations should make it cheap (precompute/caches inside).
class DistanceOracle {
 public:
  virtual ~DistanceOracle() = default;

  /// dis(a, b) >= 0. `a` is typically a fixed POI and `b` a varying
  /// probe location; implementations may exploit that asymmetry for
  /// caching even when the metric itself is symmetric.
  virtual double Distance(const Point& a, const Point& b) const = 0;

  virtual const char* name() const = 0;
};

/// The default straight-line metric.
class EuclideanDistanceOracle : public DistanceOracle {
 public:
  double Distance(const Point& a, const Point& b) const override {
    return ppgnn::Distance(a, b);
  }
  const char* name() const override { return "euclidean"; }
};

/// The process-wide Euclidean oracle (stateless).
const DistanceOracle& EuclideanOracle();

}  // namespace ppgnn

#endif  // PPGNN_GEO_DISTANCE_ORACLE_H_
