#include "spatial/dataset.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace ppgnn {
namespace {

double Clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

}  // namespace

std::vector<Poi> GenerateSequoiaLike(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<Poi> pois;
  pois.reserve(size);

  // Cluster centers along a gently curved diagonal spine (NW -> SE),
  // echoing the coastal population corridor of the real dataset, with a
  // few inland centers.
  struct Cluster {
    double cx, cy, sigma, weight;
  };
  const std::vector<Cluster> clusters = {
      {0.12, 0.88, 0.030, 0.16},  // north coastal metro
      {0.22, 0.74, 0.045, 0.12},
      {0.35, 0.62, 0.035, 0.10},
      {0.48, 0.50, 0.055, 0.13},  // central valley sprawl
      {0.60, 0.38, 0.040, 0.11},
      {0.72, 0.26, 0.030, 0.14},  // south coastal metro
      {0.82, 0.14, 0.025, 0.09},
      {0.65, 0.70, 0.060, 0.05},  // inland
      {0.30, 0.30, 0.070, 0.04},  // inland
  };
  // Remaining mass (1 - sum(weight) = 0.06) is a uniform background.
  double cluster_mass = 0.0;
  for (const Cluster& c : clusters) cluster_mass += c.weight;

  for (size_t i = 0; i < size; ++i) {
    double pick = rng.NextDouble();
    Point p;
    if (pick < cluster_mass) {
      double acc = 0.0;
      const Cluster* chosen = &clusters.back();
      for (const Cluster& c : clusters) {
        acc += c.weight;
        if (pick < acc) {
          chosen = &c;
          break;
        }
      }
      p.x = Clamp01(chosen->cx + chosen->sigma * rng.NextGaussian());
      p.y = Clamp01(chosen->cy + chosen->sigma * rng.NextGaussian());
    } else {
      p.x = rng.NextDouble();
      p.y = rng.NextDouble();
    }
    pois.push_back({static_cast<uint32_t>(i), p});
  }
  return pois;
}

std::vector<Poi> GenerateUniform(size_t size, uint64_t seed) {
  Rng rng(seed);
  std::vector<Poi> pois;
  pois.reserve(size);
  for (size_t i = 0; i < size; ++i) {
    pois.push_back(
        {static_cast<uint32_t>(i), {rng.NextDouble(), rng.NextDouble()}});
  }
  return pois;
}

Result<std::vector<Poi>> LoadCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::vector<Poi> pois;
  std::string line;
  size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::replace(line.begin(), line.end(), ',', ' ');
    std::istringstream fields(line);
    double a, b, c;
    if (!(fields >> a >> b)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected at least two numbers");
    }
    Poi poi;
    if (fields >> c) {
      poi.id = static_cast<uint32_t>(a);
      poi.location = {b, c};
    } else {
      poi.id = static_cast<uint32_t>(pois.size());
      poi.location = {a, b};
    }
    pois.push_back(poi);
  }
  if (pois.empty()) return Status::InvalidArgument(path + ": no POIs");

  // Normalize into the unit square (preserving aspect ratio is not
  // required by the paper; each axis is scaled independently like the
  // usual "normalized square space").
  double min_x = pois[0].location.x, max_x = min_x;
  double min_y = pois[0].location.y, max_y = min_y;
  for (const Poi& p : pois) {
    min_x = std::min(min_x, p.location.x);
    max_x = std::max(max_x, p.location.x);
    min_y = std::min(min_y, p.location.y);
    max_y = std::max(max_y, p.location.y);
  }
  double span_x = max_x > min_x ? max_x - min_x : 1.0;
  double span_y = max_y > min_y ? max_y - min_y : 1.0;
  for (Poi& p : pois) {
    p.location.x = (p.location.x - min_x) / span_x;
    p.location.y = (p.location.y - min_y) / span_y;
  }
  return pois;
}

Status SaveCsv(const std::string& path, const std::vector<Poi>& pois) {
  std::ofstream out(path);
  if (!out.is_open()) return Status::Internal("cannot write " + path);
  out << "# id,x,y\n";
  for (const Poi& p : pois) {
    out << p.id << "," << p.location.x << "," << p.location.y << "\n";
  }
  return Status::OK();
}

}  // namespace ppgnn
