#include "spatial/knn.h"

#include <algorithm>
#include <queue>

namespace ppgnn {
namespace {

// Best-first queue entry: either an R-tree node or a concrete POI.
struct QueueEntry {
  double cost;
  bool is_poi;
  uint32_t index;  // node id or POI index
  uint32_t tie;    // POI id for deterministic ordering

  bool operator>(const QueueEntry& o) const {
    if (cost != o.cost) return cost > o.cost;
    if (is_poi != o.is_poi) return is_poi && !o.is_poi ? false : true;
    return tie > o.tie;
  }
};

}  // namespace

std::vector<RankedPoi> KnnQuery(const RTree& tree, const Point& query, int k) {
  std::vector<RankedPoi> out;
  if (tree.Empty() || k <= 0) return out;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  frontier.push({MinDistance(query, tree.nodes()[tree.root()].box), false,
                 tree.root(), 0});
  while (!frontier.empty() && out.size() < static_cast<size_t>(k)) {
    QueueEntry top = frontier.top();
    frontier.pop();
    if (top.is_poi) {
      out.push_back({tree.pois()[top.index], top.cost});
      continue;
    }
    const RTree::Node& node = tree.nodes()[top.index];
    if (node.is_leaf) {
      for (uint32_t idx : node.entries) {
        const Poi& poi = tree.pois()[idx];
        frontier.push({Distance(query, poi.location), true, idx, poi.id});
      }
    } else {
      for (uint32_t child : node.entries) {
        frontier.push(
            {MinDistance(query, tree.nodes()[child].box), false, child, 0});
      }
    }
  }
  return out;
}

std::vector<RankedPoi> KnnBruteForce(const std::vector<Poi>& pois,
                                     const Point& query, int k) {
  std::vector<RankedPoi> all;
  all.reserve(pois.size());
  for (const Poi& poi : pois) all.push_back({poi, Distance(query, poi.location)});
  std::sort(all.begin(), all.end(), [](const RankedPoi& a, const RankedPoi& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.poi.id < b.poi.id;
  });
  if (all.size() > static_cast<size_t>(std::max(k, 0)))
    all.resize(static_cast<size_t>(std::max(k, 0)));
  return all;
}

}  // namespace ppgnn
