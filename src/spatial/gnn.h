// Group (aggregate) nearest neighbor search — the plaintext kGNN black box
// used by the LSP (Definition 2.1 of the paper).
//
// The paper's LSP runs the classic Minimum Bounding Method (MBM) of
// Papadias et al. (ICDE 2004). MbmGnnSolver implements it as a best-first
// R-tree traversal ordered by the aggregate min-distance bound
// amindist(node, C) = F(mindist(node, l_1), ..., mindist(node, l_n)),
// which is a valid lower bound for any monotone F. BruteForceGnnSolver is
// the O(D log D) reference.
//
// The PPGNN protocol treats this interface as a black box, so any group
// query (e.g. a meeting-location determination algorithm) can be swapped
// in without touching the privacy machinery.

#ifndef PPGNN_SPATIAL_GNN_H_
#define PPGNN_SPATIAL_GNN_H_

#include <atomic>
#include <vector>

#include "geo/aggregate.h"
#include "spatial/knn.h"
#include "spatial/rtree.h"

namespace ppgnn {

/// Abstract plaintext kGNN engine.
class GnnSolver {
 public:
  virtual ~GnnSolver() = default;

  /// Top-k POIs in ascending F(p, queries) order (fewer if |D| < k).
  virtual std::vector<RankedPoi> Query(const std::vector<Point>& queries,
                                       int k, AggregateKind kind) const = 0;

  virtual const char* name() const = 0;
};

/// MBM over an R-tree. The tree must outlive the solver.
class MbmGnnSolver : public GnnSolver {
 public:
  explicit MbmGnnSolver(const RTree* tree) : tree_(tree) {}

  std::vector<RankedPoi> Query(const std::vector<Point>& queries, int k,
                               AggregateKind kind) const override;
  const char* name() const override { return "MBM"; }

  /// Nodes popped by the last Query (instrumentation for benchmarks;
  /// atomic so concurrent queries from a parallel LSP don't race).
  // ppgnn: stat_counter(last_nodes_visited_)
  uint64_t last_nodes_visited() const {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }

 private:
  const RTree* tree_;
  mutable std::atomic<uint64_t> last_nodes_visited_{0};
};

/// The Single Point Method (SPM) of Papadias et al. — the other classic
/// kGNN algorithm the MBM paper proposes. It orders the R-tree traversal
/// by distance to the group centroid q* and terminates via the triangle
/// inequality: for sum, F(p) >= n*dis(p,q*) - sum_i dis(q_i,q*); for
/// max/min, F(p) >= dis(p,q*) - max_i dis(q_i,q*). Exact for all three
/// aggregates; typically visits more nodes than MBM for spread-out
/// groups (see bench_micro), which is why the paper's LSP uses MBM.
class SpmGnnSolver : public GnnSolver {
 public:
  explicit SpmGnnSolver(const RTree* tree) : tree_(tree) {}

  std::vector<RankedPoi> Query(const std::vector<Point>& queries, int k,
                               AggregateKind kind) const override;
  const char* name() const override { return "SPM"; }

  uint64_t last_nodes_visited() const {
    return last_nodes_visited_.load(std::memory_order_relaxed);
  }

 private:
  const RTree* tree_;
  mutable std::atomic<uint64_t> last_nodes_visited_{0};
};

/// Exhaustive scan reference. The POI vector must outlive the solver.
class BruteForceGnnSolver : public GnnSolver {
 public:
  explicit BruteForceGnnSolver(const std::vector<Poi>* pois) : pois_(pois) {}

  std::vector<RankedPoi> Query(const std::vector<Point>& queries, int k,
                               AggregateKind kind) const override;
  const char* name() const override { return "BruteForce"; }

 private:
  const std::vector<Poi>* pois_;
};

}  // namespace ppgnn

#endif  // PPGNN_SPATIAL_GNN_H_
