// k-nearest-neighbor search over an R-tree (best-first traversal) plus a
// brute-force reference implementation used for differential testing.

#ifndef PPGNN_SPATIAL_KNN_H_
#define PPGNN_SPATIAL_KNN_H_

#include <vector>

#include "geo/point.h"
#include "spatial/rtree.h"

namespace ppgnn {

/// A ranked query answer entry.
struct RankedPoi {
  Poi poi;
  double cost = 0.0;  // distance (kNN) or aggregate cost (kGNN)
};

/// Returns the k POIs nearest to `query` in ascending distance order
/// (fewer if the database is smaller). Ties are broken by POI id so
/// results are deterministic.
std::vector<RankedPoi> KnnQuery(const RTree& tree, const Point& query, int k);

/// O(D log D) reference used to validate KnnQuery.
std::vector<RankedPoi> KnnBruteForce(const std::vector<Poi>& pois,
                                     const Point& query, int k);

}  // namespace ppgnn

#endif  // PPGNN_SPATIAL_KNN_H_
