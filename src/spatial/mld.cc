#include "spatial/mld.h"

#include <algorithm>

namespace ppgnn {

std::vector<RankedPoi> MeetingLocationSolver::Query(
    const std::vector<Point>& queries, int k, AggregateKind kind) const {
  std::vector<RankedPoi> out;
  if (queries.empty() || k <= 0) return out;
  out.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    out.push_back({{static_cast<uint32_t>(i), queries[i]},
                   AggregateCost(kind, queries[i], queries)});
  }
  std::sort(out.begin(), out.end(), [](const RankedPoi& a, const RankedPoi& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.poi.id < b.poi.id;
  });
  if (out.size() > static_cast<size_t>(k)) out.resize(static_cast<size_t>(k));
  return out;
}

}  // namespace ppgnn
