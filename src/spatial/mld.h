// Meeting location determination (MLD) as a kGNN black box.
//
// The paper (Sections 1 and 9) claims its privacy machinery adapts to the
// privacy-preserving meeting location determination problem (PPMLD,
// Bilogrevic et al., TIFS 2014) by replacing the kGNN engine with a
// (non-private) MLD algorithm: each user submits a *preferred meeting
// location* instead of her current location, and the answer is the
// submitted location minimizing the aggregate distance to all submitted
// locations — no LSP database involved.
//
// MeetingLocationSolver realizes that: it ignores the POI database and
// ranks the query locations themselves. Plugged into LspDatabase, the
// whole PPGNN pipeline (dummy proposals, candidate queries, answer
// sanitation, private selection) carries over verbatim — which is
// exactly the paper's portability argument.

#ifndef PPGNN_SPATIAL_MLD_H_
#define PPGNN_SPATIAL_MLD_H_

#include "spatial/gnn.h"

namespace ppgnn {

class MeetingLocationSolver : public GnnSolver {
 public:
  MeetingLocationSolver() = default;

  /// Ranks the proposals in `queries` by F(proposal, queries); the
  /// returned Poi ids are the proposers' indices.
  std::vector<RankedPoi> Query(const std::vector<Point>& queries, int k,
                               AggregateKind kind) const override;
  const char* name() const override { return "MLD"; }
};

}  // namespace ppgnn

#endif  // PPGNN_SPATIAL_MLD_H_
