// POI dataset loading and synthesis.
//
// The paper evaluates on the Sequoia dataset: 62,556 POIs from California,
// normalized into a square space. That dataset is not redistributable
// here, so GenerateSequoiaLike() synthesizes a workload with the same
// cardinality and a comparable spatial skew: a mixture of dense Gaussian
// clusters strung along a diagonal "coastline" spine (mimicking
// California's population centers) over a sparse uniform background. The
// generator is fully deterministic given a seed. LoadCsv() accepts the
// real dataset in "x,y" or "id,x,y" form if the user has it; coordinates
// are normalized to the unit square on load.

#ifndef PPGNN_SPATIAL_DATASET_H_
#define PPGNN_SPATIAL_DATASET_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "geo/point.h"

namespace ppgnn {

/// Cardinality of the Sequoia dataset used throughout the paper.
inline constexpr size_t kSequoiaSize = 62556;

/// Deterministic synthetic stand-in for the Sequoia dataset (see file
/// comment). All coordinates are in the unit square; ids are 0..size-1.
std::vector<Poi> GenerateSequoiaLike(size_t size, uint64_t seed);

/// Uniform POIs over the unit square (used by tests and ablations).
std::vector<Poi> GenerateUniform(size_t size, uint64_t seed);

/// Loads a CSV of POIs ("x,y" or "id,x,y" per line; '#' comments allowed)
/// and normalizes coordinates into the unit square.
Result<std::vector<Poi>> LoadCsv(const std::string& path);

/// Writes "id,x,y" lines.
Status SaveCsv(const std::string& path, const std::vector<Poi>& pois);

}  // namespace ppgnn

#endif  // PPGNN_SPATIAL_DATASET_H_
