// R-tree over POIs: STR bulk load plus dynamic Guttman insert/delete.
//
// The tree is built from the LSP's POI database via Sort-Tile-Recursive
// packing (Leutenegger et al.) and then serves best-first kNN / kGNN
// traversals and range queries. It also supports dynamic updates —
// Guttman's ChooseLeaf + quadratic split on insert, and condense-tree
// with reinsertion on delete — because the paper holds up dynamic
// databases as a PPGNN advantage: unlike APNN-style pre-computation,
// nothing else needs recomputing when a POI appears or disappears.
// Nodes are stored in a flat arena for locality; child links are indices.

#ifndef PPGNN_SPATIAL_RTREE_H_
#define PPGNN_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "geo/point.h"
#include "geo/rect.h"

namespace ppgnn {

class RTree {
 public:
  /// Maximum entries per node.
  static constexpr int kFanout = 16;

  struct Node {
    Rect box = Rect::Empty();
    bool is_leaf = true;
    // Leaf: indices into pois(); internal: indices into nodes.
    std::vector<uint32_t> entries;
  };

  /// Minimum entries per node after a split (Guttman's m).
  static constexpr int kMinFill = kFanout * 2 / 5;

  /// Builds a tree over a copy of `pois` with STR packing. An empty
  /// database yields an empty (but valid) tree.
  static RTree Build(std::vector<Poi> pois);

  bool Empty() const { return live_count_ == 0; }
  /// Number of live POIs (inserted minus deleted).
  size_t Size() const { return live_count_; }
  /// The POI arena. Slots of deleted POIs remain but are detached from
  /// the tree; iterate LivePois() for the current database.
  const std::vector<Poi>& pois() const { return pois_; }
  /// Copies of all live POIs (the current database contents).
  std::vector<Poi> LivePois() const;
  const std::vector<Node>& nodes() const { return nodes_; }
  /// Index of the root node; only valid when !Empty().
  uint32_t root() const { return root_; }
  /// Height of the tree (leaf = 1); 0 when empty.
  int Height() const { return height_; }

  /// Dynamic insert (Guttman ChooseLeaf + quadratic split).
  void Insert(const Poi& poi);

  /// Deletes the first live POI with this id. Returns true if found.
  /// Underfull nodes along the path are dissolved and their entries
  /// reinserted (condense-tree).
  bool Delete(uint32_t poi_id);

  /// All POIs whose location falls inside `range` (inclusive bounds).
  std::vector<Poi> RangeQuery(const Rect& range) const;

  /// Validates structural invariants (MBR containment, fanout bounds,
  /// every live POI reachable exactly once, balance). Used by tests.
  Status CheckInvariants() const;

 private:
  uint32_t AllocNode();
  // Returns the leaf best suited for `box` (least area enlargement).
  uint32_t ChooseLeaf(const Rect& box, std::vector<uint32_t>* path) const;
  // Splits `node` (overfull) into itself + a new node; returns the new id.
  uint32_t SplitNode(uint32_t node_id);
  void RecomputeBox(uint32_t node_id);
  Rect EntryBox(const Node& node, size_t i) const;
  // Walks up `path` fixing boxes and propagating splits.
  void AdjustTree(std::vector<uint32_t> path, uint32_t split_id);
  // Finds the leaf containing POI index `poi_index`; fills `path`
  // (root..leaf). Returns false if not found.
  bool FindLeaf(uint32_t poi_index, uint32_t node_id,
                std::vector<uint32_t>* path) const;

  std::vector<Poi> pois_;
  std::vector<bool> live_;
  size_t live_count_ = 0;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_nodes_;
  uint32_t root_ = 0;
  int height_ = 0;
};

}  // namespace ppgnn

#endif  // PPGNN_SPATIAL_RTREE_H_
