#include "spatial/gnn.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace ppgnn {
namespace {

struct QueueEntry {
  double cost;
  bool is_poi;
  uint32_t index;
  uint32_t tie;

  bool operator>(const QueueEntry& o) const {
    if (cost != o.cost) return cost > o.cost;
    if (is_poi != o.is_poi) return !is_poi;  // pop POIs before nodes on ties
    return tie > o.tie;
  }
};

}  // namespace

std::vector<RankedPoi> MbmGnnSolver::Query(const std::vector<Point>& queries,
                                           int k, AggregateKind kind) const {
  uint64_t nodes_visited = 0;
  std::vector<RankedPoi> out;
  if (tree_->Empty() || k <= 0 || queries.empty()) {
    last_nodes_visited_.store(0, std::memory_order_relaxed);
    return out;
  }

  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  frontier.push({AggregateMinDistance(kind, tree_->nodes()[tree_->root()].box,
                                      queries),
                 false, tree_->root(), 0});
  while (!frontier.empty() && out.size() < static_cast<size_t>(k)) {
    QueueEntry top = frontier.top();
    frontier.pop();
    if (top.is_poi) {
      out.push_back({tree_->pois()[top.index], top.cost});
      continue;
    }
    ++nodes_visited;
    const RTree::Node& node = tree_->nodes()[top.index];
    if (node.is_leaf) {
      for (uint32_t idx : node.entries) {
        const Poi& poi = tree_->pois()[idx];
        frontier.push(
            {AggregateCost(kind, poi.location, queries), true, idx, poi.id});
      }
    } else {
      for (uint32_t child : node.entries) {
        frontier.push({AggregateMinDistance(
                           kind, tree_->nodes()[child].box, queries),
                       false, child, 0});
      }
    }
  }
  last_nodes_visited_.store(nodes_visited, std::memory_order_relaxed);
  return out;
}

std::vector<RankedPoi> SpmGnnSolver::Query(const std::vector<Point>& queries,
                                           int k, AggregateKind kind) const {
  uint64_t nodes_visited = 0;
  std::vector<RankedPoi> out;
  if (tree_->Empty() || k <= 0 || queries.empty()) {
    last_nodes_visited_.store(0, std::memory_order_relaxed);
    return out;
  }

  // Centroid q* and the distance terms of the termination bounds.
  Point centroid{0, 0};
  for (const Point& q : queries) {
    centroid.x += q.x;
    centroid.y += q.y;
  }
  centroid.x /= static_cast<double>(queries.size());
  centroid.y /= static_cast<double>(queries.size());
  double sum_dist = 0, max_dist = 0;
  for (const Point& q : queries) {
    double dist = Distance(centroid, q);
    sum_dist += dist;
    max_dist = std::max(max_dist, dist);
  }
  const double n = static_cast<double>(queries.size());
  // Lower bound on F(p, C) as a function of dis(p, q*), valid by the
  // triangle inequality for each aggregate.
  auto bound = [&](double dist_to_centroid) {
    if (kind == AggregateKind::kSum) return n * dist_to_centroid - sum_dist;
    return dist_to_centroid - max_dist;
  };

  // Best-first by distance to the centroid; collect exact costs into a
  // bounded max-heap of size k; stop when the bound exceeds the k-th
  // best (the frontier is ordered, so everything later is worse too).
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      frontier;
  frontier.push({MinDistance(centroid, tree_->nodes()[tree_->root()].box),
                 false, tree_->root(), 0});
  std::vector<RankedPoi> best;  // kept sorted ascending by cost
  auto kth_cost = [&] {
    return best.size() < static_cast<size_t>(k)
               ? std::numeric_limits<double>::infinity()
               : best.back().cost;
  };
  while (!frontier.empty()) {
    QueueEntry top = frontier.top();
    frontier.pop();
    if (bound(top.cost) > kth_cost()) break;  // termination condition
    if (top.is_poi) {
      const Poi& poi = tree_->pois()[top.index];
      double cost = AggregateCost(kind, poi.location, queries);
      if (cost < kth_cost() ||
          best.size() < static_cast<size_t>(k)) {
        RankedPoi entry{poi, cost};
        auto it = std::lower_bound(
            best.begin(), best.end(), entry,
            [](const RankedPoi& a, const RankedPoi& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              return a.poi.id < b.poi.id;
            });
        best.insert(it, entry);
        if (best.size() > static_cast<size_t>(k)) best.pop_back();
      }
      continue;
    }
    ++nodes_visited;
    const RTree::Node& node = tree_->nodes()[top.index];
    if (node.is_leaf) {
      for (uint32_t idx : node.entries) {
        const Poi& poi = tree_->pois()[idx];
        frontier.push(
            {Distance(centroid, poi.location), true, idx, poi.id});
      }
    } else {
      for (uint32_t child : node.entries) {
        frontier.push(
            {MinDistance(centroid, tree_->nodes()[child].box), false, child,
             0});
      }
    }
  }
  last_nodes_visited_.store(nodes_visited, std::memory_order_relaxed);
  return best;
}

std::vector<RankedPoi> BruteForceGnnSolver::Query(
    const std::vector<Point>& queries, int k, AggregateKind kind) const {
  std::vector<RankedPoi> all;
  all.reserve(pois_->size());
  for (const Poi& poi : *pois_) {
    all.push_back({poi, AggregateCost(kind, poi.location, queries)});
  }
  std::sort(all.begin(), all.end(), [](const RankedPoi& a, const RankedPoi& b) {
    if (a.cost != b.cost) return a.cost < b.cost;
    return a.poi.id < b.poi.id;
  });
  if (all.size() > static_cast<size_t>(std::max(k, 0)))
    all.resize(static_cast<size_t>(std::max(k, 0)));
  return all;
}

}  // namespace ppgnn
