#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace ppgnn {

RTree RTree::Build(std::vector<Poi> pois) {
  RTree tree;
  tree.pois_ = std::move(pois);
  tree.live_.assign(tree.pois_.size(), true);
  tree.live_count_ = tree.pois_.size();
  if (tree.pois_.empty()) return tree;

  // --- leaf level: Sort-Tile-Recursive packing ---
  std::vector<uint32_t> order(tree.pois_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return tree.pois_[a].location.x < tree.pois_[b].location.x;
  });

  const size_t count = order.size();
  const size_t leaf_count = (count + kFanout - 1) / kFanout;
  const size_t slice_count =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  const size_t slice_size =
      slice_count == 0 ? count : (count + slice_count - 1) / slice_count;

  std::vector<uint32_t> level;  // node ids of the current level
  for (size_t s = 0; s < count; s += slice_size) {
    size_t end = std::min(s + slice_size, count);
    std::sort(order.begin() + s, order.begin() + end,
              [&](uint32_t a, uint32_t b) {
                return tree.pois_[a].location.y < tree.pois_[b].location.y;
              });
    for (size_t i = s; i < end; i += kFanout) {
      Node leaf;
      leaf.is_leaf = true;
      size_t leaf_end = std::min(i + kFanout, end);
      for (size_t j = i; j < leaf_end; ++j) {
        leaf.entries.push_back(order[j]);
        leaf.box.ExpandToInclude(tree.pois_[order[j]].location);
      }
      level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(std::move(leaf));
    }
  }
  tree.height_ = 1;

  // --- pack upward until a single root remains ---
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [&](uint32_t a, uint32_t b) {
      return tree.nodes_[a].box.Center().x < tree.nodes_[b].box.Center().x;
    });
    const size_t n = level.size();
    const size_t parent_count = (n + kFanout - 1) / kFanout;
    const size_t slices = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(parent_count))));
    const size_t per_slice = slices == 0 ? n : (n + slices - 1) / slices;

    std::vector<uint32_t> next_level;
    for (size_t s = 0; s < n; s += per_slice) {
      size_t end = std::min(s + per_slice, n);
      std::sort(level.begin() + s, level.begin() + end,
                [&](uint32_t a, uint32_t b) {
                  return tree.nodes_[a].box.Center().y <
                         tree.nodes_[b].box.Center().y;
                });
      for (size_t i = s; i < end; i += kFanout) {
        Node parent;
        parent.is_leaf = false;
        size_t parent_end = std::min(i + kFanout, end);
        for (size_t j = i; j < parent_end; ++j) {
          parent.entries.push_back(level[j]);
          parent.box = parent.box.Union(tree.nodes_[level[j]].box);
        }
        next_level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
        tree.nodes_.push_back(std::move(parent));
      }
    }
    level = std::move(next_level);
    ++tree.height_;
  }
  tree.root_ = level[0];
  return tree;
}

std::vector<Poi> RTree::LivePois() const {
  std::vector<Poi> out;
  out.reserve(live_count_);
  for (size_t i = 0; i < pois_.size(); ++i) {
    if (live_[i]) out.push_back(pois_[i]);
  }
  return out;
}

// ---------- dynamic operations ----------

uint32_t RTree::AllocNode() {
  if (!free_nodes_.empty()) {
    uint32_t id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
    return id;
  }
  nodes_.push_back(Node{});
  return static_cast<uint32_t>(nodes_.size() - 1);
}

Rect RTree::EntryBox(const Node& node, size_t i) const {
  return node.is_leaf ? Rect::FromPoint(pois_[node.entries[i]].location)
                      : nodes_[node.entries[i]].box;
}

void RTree::RecomputeBox(uint32_t node_id) {
  Node& node = nodes_[node_id];
  Rect box = Rect::Empty();
  for (size_t i = 0; i < node.entries.size(); ++i) {
    box = box.Union(EntryBox(node, i));
  }
  node.box = box;
}

uint32_t RTree::ChooseLeaf(const Rect& box,
                           std::vector<uint32_t>* path) const {
  uint32_t id = root_;
  while (true) {
    path->push_back(id);
    const Node& node = nodes_[id];
    if (node.is_leaf) return id;
    // Least area enlargement; ties by smaller area.
    uint32_t best_child = node.entries[0];
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (uint32_t child : node.entries) {
      const Rect& child_box = nodes_[child].box;
      double area = child_box.Area();
      double enlargement = child_box.Union(box).Area() - area;
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best_enlargement = enlargement;
        best_area = area;
        best_child = child;
      }
    }
    id = best_child;
  }
}

uint32_t RTree::SplitNode(uint32_t node_id) {
  // Guttman's quadratic split.
  const bool is_leaf = nodes_[node_id].is_leaf;
  std::vector<uint32_t> entries = std::move(nodes_[node_id].entries);
  const uint32_t sibling = AllocNode();  // may invalidate Node references
  nodes_[sibling].is_leaf = is_leaf;

  auto box_of = [&](uint32_t entry) {
    return is_leaf ? Rect::FromPoint(pois_[entry].location)
                   : nodes_[entry].box;
  };

  // Seeds: the pair wasting the most area if grouped together.
  size_t seed_a = 0, seed_b = 1;
  double worst = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      Rect combined = box_of(entries[i]).Union(box_of(entries[j]));
      double waste = combined.Area() - box_of(entries[i]).Area() -
                     box_of(entries[j]).Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<uint32_t> group_a = {entries[seed_a]};
  std::vector<uint32_t> group_b = {entries[seed_b]};
  Rect box_a = box_of(entries[seed_a]);
  Rect box_b = box_of(entries[seed_b]);
  std::vector<uint32_t> remaining;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(entries[i]);
  }

  while (!remaining.empty()) {
    const size_t total_left = remaining.size();
    // Min-fill guarantee: if one group must take everything left, do it.
    if (group_a.size() + total_left <= kMinFill) {
      for (uint32_t e : remaining) {
        group_a.push_back(e);
        box_a = box_a.Union(box_of(e));
      }
      break;
    }
    if (group_b.size() + total_left <= kMinFill) {
      for (uint32_t e : remaining) {
        group_b.push_back(e);
        box_b = box_b.Union(box_of(e));
      }
      break;
    }
    // PickNext: the entry with the strongest preference.
    size_t pick = 0;
    double best_diff = -1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      Rect b = box_of(remaining[i]);
      double d_a = box_a.Union(b).Area() - box_a.Area();
      double d_b = box_b.Union(b).Area() - box_b.Area();
      double diff = std::abs(d_a - d_b);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    uint32_t entry = remaining[pick];
    remaining.erase(remaining.begin() + static_cast<long>(pick));
    Rect b = box_of(entry);
    double d_a = box_a.Union(b).Area() - box_a.Area();
    double d_b = box_b.Union(b).Area() - box_b.Area();
    bool to_a;
    if (d_a != d_b) {
      to_a = d_a < d_b;
    } else if (box_a.Area() != box_b.Area()) {
      to_a = box_a.Area() < box_b.Area();
    } else {
      to_a = group_a.size() <= group_b.size();
    }
    if (to_a) {
      group_a.push_back(entry);
      box_a = box_a.Union(b);
    } else {
      group_b.push_back(entry);
      box_b = box_b.Union(b);
    }
  }

  nodes_[node_id].entries = std::move(group_a);
  nodes_[node_id].is_leaf = is_leaf;
  nodes_[sibling].entries = std::move(group_b);
  RecomputeBox(node_id);
  RecomputeBox(sibling);
  return sibling;
}

void RTree::AdjustTree(std::vector<uint32_t> path, uint32_t /*split_id*/) {
  for (size_t i = path.size(); i-- > 0;) {
    uint32_t id = path[i];
    RecomputeBox(id);
    if (nodes_[id].entries.size() > kFanout) {
      uint32_t sibling = SplitNode(id);
      if (i == 0) {
        // Root split: grow a new root.
        uint32_t new_root = AllocNode();
        nodes_[new_root].is_leaf = false;
        nodes_[new_root].entries = {id, sibling};
        RecomputeBox(new_root);
        root_ = new_root;
        ++height_;
      } else {
        nodes_[path[i - 1]].entries.push_back(sibling);
      }
    }
  }
}

void RTree::Insert(const Poi& poi) {
  uint32_t poi_index = static_cast<uint32_t>(pois_.size());
  pois_.push_back(poi);
  live_.push_back(true);
  ++live_count_;

  if (height_ == 0) {
    root_ = AllocNode();
    nodes_[root_].is_leaf = true;
    nodes_[root_].entries.push_back(poi_index);
    RecomputeBox(root_);
    height_ = 1;
    return;
  }
  std::vector<uint32_t> path;
  uint32_t leaf = ChooseLeaf(Rect::FromPoint(poi.location), &path);
  nodes_[leaf].entries.push_back(poi_index);
  AdjustTree(std::move(path), 0);
}

bool RTree::FindLeaf(uint32_t poi_index, uint32_t node_id,
                     std::vector<uint32_t>* path) const {
  path->push_back(node_id);
  const Node& node = nodes_[node_id];
  if (node.is_leaf) {
    for (uint32_t entry : node.entries) {
      if (entry == poi_index) return true;
    }
  } else {
    const Point& location = pois_[poi_index].location;
    for (uint32_t child : node.entries) {
      if (nodes_[child].box.Contains(location) &&
          FindLeaf(poi_index, child, path)) {
        return true;
      }
    }
  }
  path->pop_back();
  return false;
}

namespace {

// Depth-first collection of all POI indices in a subtree.
void CollectSubtree(const std::vector<RTree::Node>& nodes, uint32_t node_id,
                    std::vector<uint32_t>* pois_out,
                    std::vector<uint32_t>* nodes_out) {
  nodes_out->push_back(node_id);
  const RTree::Node& node = nodes[node_id];
  if (node.is_leaf) {
    for (uint32_t entry : node.entries) pois_out->push_back(entry);
  } else {
    for (uint32_t child : node.entries) {
      CollectSubtree(nodes, child, pois_out, nodes_out);
    }
  }
}

}  // namespace

bool RTree::Delete(uint32_t poi_id) {
  // Locate the live POI slot with this id.
  uint32_t poi_index = 0;
  bool found = false;
  for (size_t i = 0; i < pois_.size(); ++i) {
    if (live_[i] && pois_[i].id == poi_id) {
      poi_index = static_cast<uint32_t>(i);
      found = true;
      break;
    }
  }
  if (!found || height_ == 0) return false;

  std::vector<uint32_t> path;
  if (!FindLeaf(poi_index, root_, &path)) return false;

  // Remove the entry from its leaf.
  uint32_t leaf = path.back();
  auto& entries = nodes_[leaf].entries;
  entries.erase(std::find(entries.begin(), entries.end(), poi_index));
  live_[poi_index] = false;
  --live_count_;

  // Condense: dissolve underfull non-root nodes bottom-up and remember
  // their POIs for reinsertion.
  std::vector<uint32_t> orphans;
  for (size_t i = path.size(); i-- > 1;) {
    uint32_t id = path[i];
    if (nodes_[id].entries.size() < static_cast<size_t>(kMinFill)) {
      std::vector<uint32_t> freed;
      CollectSubtree(nodes_, id, &orphans, &freed);
      auto& parent_entries = nodes_[path[i - 1]].entries;
      parent_entries.erase(
          std::find(parent_entries.begin(), parent_entries.end(), id));
      for (uint32_t f : freed) free_nodes_.push_back(f);
    } else {
      RecomputeBox(id);
    }
  }
  RecomputeBox(root_);

  // Shrink the root while it is an internal node with a single child.
  while (!nodes_[root_].is_leaf && nodes_[root_].entries.size() == 1) {
    uint32_t old_root = root_;
    root_ = nodes_[root_].entries[0];
    free_nodes_.push_back(old_root);
    --height_;
  }
  // A now-empty root leaf means an empty tree.
  if (nodes_[root_].is_leaf && nodes_[root_].entries.empty()) {
    free_nodes_.push_back(root_);
    root_ = 0;
    height_ = 0;
  }

  // Reinsert orphaned POIs (their pois_ slots are reused as-is).
  for (uint32_t orphan : orphans) {
    if (height_ == 0) {
      root_ = AllocNode();
      nodes_[root_].is_leaf = true;
      nodes_[root_].entries.push_back(orphan);
      RecomputeBox(root_);
      height_ = 1;
      continue;
    }
    std::vector<uint32_t> insert_path;
    uint32_t target =
        ChooseLeaf(Rect::FromPoint(pois_[orphan].location), &insert_path);
    nodes_[target].entries.push_back(orphan);
    AdjustTree(std::move(insert_path), 0);
  }
  return true;
}

// ---------- queries & validation ----------

std::vector<Poi> RTree::RangeQuery(const Rect& range) const {
  std::vector<Poi> out;
  if (Empty()) return out;
  std::vector<uint32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.box.Intersects(range)) continue;
    if (node.is_leaf) {
      for (uint32_t idx : node.entries) {
        if (range.Contains(pois_[idx].location)) out.push_back(pois_[idx]);
      }
    } else {
      for (uint32_t child : node.entries) {
        if (nodes_[child].box.Intersects(range)) stack.push_back(child);
      }
    }
  }
  return out;
}

Status RTree::CheckInvariants() const {
  if (Empty()) {
    if (height_ != 0) return Status::Internal("empty tree has height");
    return Status::OK();
  }
  std::vector<int> seen(pois_.size(), 0);
  std::vector<std::pair<uint32_t, int>> stack = {{root_, height_}};
  while (!stack.empty()) {
    auto [id, level] = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (node.entries.empty()) return Status::Internal("node with no entries");
    if (node.entries.size() > kFanout)
      return Status::Internal("node exceeds fanout");
    if (node.is_leaf != (level == 1))
      return Status::Internal("leaf depth mismatch: tree not balanced");
    Rect computed = Rect::Empty();
    if (node.is_leaf) {
      for (uint32_t idx : node.entries) {
        if (idx >= pois_.size()) return Status::Internal("POI index OOB");
        ++seen[idx];
        computed.ExpandToInclude(pois_[idx].location);
      }
    } else {
      for (uint32_t child : node.entries) {
        if (child >= nodes_.size()) return Status::Internal("child index OOB");
        computed = computed.Union(nodes_[child].box);
        stack.push_back({child, level - 1});
      }
    }
    if (!(computed == node.box))
      return Status::Internal("node MBR is not tight");
  }
  for (size_t i = 0; i < seen.size(); ++i) {
    int expected = live_[i] ? 1 : 0;
    if (seen[i] != expected) {
      return Status::Internal("POI " + std::to_string(i) + " reachable " +
                              std::to_string(seen[i]) + " times (expected " +
                              std::to_string(expected) + ")");
    }
  }
  return Status::OK();
}

}  // namespace ppgnn
