// Modular arithmetic on BigInt: gcd/lcm, modular inverse, modular
// exponentiation (4-bit fixed-window), and CRT recombination.

#ifndef PPGNN_BIGINT_MODULAR_H_
#define PPGNN_BIGINT_MODULAR_H_

#include "bigint/bigint.h"
#include "common/status.h"

namespace ppgnn {

class MontgomeryContext;

/// Greatest common divisor of |a| and |b| (non-negative).
BigInt Gcd(const BigInt& a, const BigInt& b);

/// Least common multiple of |a| and |b| (non-negative).
BigInt Lcm(const BigInt& a, const BigInt& b);

/// x such that a·x ≡ 1 (mod m), in [0, m). Errors if gcd(a, m) != 1 or
/// m < 2.
Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

/// base^exponent mod m, with exponent >= 0 and m >= 1. Uses a 4-bit
/// fixed-window ladder; cost is O(bits(exponent)) modular multiplications.
/// Odd moduli >= 128 bits construct a throwaway MontgomeryContext per
/// call — hot paths must use the prebuilt-context overload below.
Result<BigInt> ModExp(const BigInt& base, const BigInt& exponent,
                      const BigInt& m);

/// base^exponent mod ctx.modulus() using a prebuilt Montgomery context,
/// skipping the per-call derivation of n' and R^2 mod n. Bit-identical
/// to the BigInt-modulus overload for the same (odd) modulus.
Result<BigInt> ModExp(const BigInt& base, const BigInt& exponent,
                      const MontgomeryContext& ctx);

/// a*b mod m.
BigInt ModMul(const BigInt& a, const BigInt& b, const BigInt& m);

/// Chinese remainder theorem for two coprime moduli: the unique x in
/// [0, m1*m2) with x ≡ r1 (mod m1) and x ≡ r2 (mod m2).
Result<BigInt> CrtCombine(const BigInt& r1, const BigInt& m1, const BigInt& r2,
                          const BigInt& m2);

}  // namespace ppgnn

#endif  // PPGNN_BIGINT_MODULAR_H_
