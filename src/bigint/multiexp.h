// Simultaneous multi-exponentiation (Straus's interleaved windowed
// method): prod_i bases[i]^{exps[i]} mod n computed with ONE shared
// square chain instead of one per base.
//
// A plain term-by-term evaluation of a t-term product with b-bit
// exponents costs ~t*b squarings plus ~t*b/w multiplies. Straus
// interleaves all t window tables over a single accumulator, paying b
// squarings total: ~b + t*b/w + t*(2^w - 2) modular multiplies. For the
// PPGNN selection hot path (t = delta' encrypted indicator entries,
// b = key-sized packed scalars) this is a 3-5x reduction in modular
// multiplies, on top of sharing the Montgomery domain conversions.
//
// MultiExpEngine additionally separates the per-base table build (done
// once) from evaluation (done per exponent row), so an answer matrix
// with m rows amortizes the table build m ways — exactly the A (x) [v]
// access pattern of Theorem 3.1.
//
// Results are bit-identical to the naive ladder: the arithmetic is exact
// residue arithmetic over the same modulus, so every evaluation order
// yields the same canonical representative.

#ifndef PPGNN_BIGINT_MULTIEXP_H_
#define PPGNN_BIGINT_MULTIEXP_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/status.h"

namespace ppgnn {

class MultiExpEngine {
 public:
  /// Builds the per-base window tables in the Montgomery domain. Bases
  /// are reduced modulo ctx->modulus(). `ctx` is borrowed and must
  /// outlive the engine.
  static Result<MultiExpEngine> Create(const MontgomeryContext* ctx,
                                       const std::vector<BigInt>& bases);

  /// prod_i bases[i]^{exponents[i]} mod n. exponents.size() must equal
  /// size(); every exponent must be >= 0. Zero exponents contribute the
  /// multiplicative identity and cost nothing beyond the shared squares.
  /// Thread-safe: const, no shared mutable state.
  Result<BigInt> Eval(const std::vector<BigInt>& exponents) const;

  /// Number of bases the engine was built over.
  size_t size() const { return tables_.size(); }

  const MontgomeryContext& context() const { return *ctx_; }

 private:
  // 4-bit windows: optimal within ~5% across the exponent sizes the
  // selection path sees (60-bit packed scalars up to 3072-bit layered
  // ciphertext scalars); see DESIGN.md "Exponentiation engine".
  static constexpr int kWindow = 4;
  static constexpr int kTableSize = 1 << kWindow;

  MultiExpEngine() = default;

  const MontgomeryContext* ctx_ = nullptr;
  // tables_[i][c] = bases[i]^c in the Montgomery domain, c in [1, 15]
  // (slot 0 is unused).
  std::vector<std::vector<std::vector<uint64_t>>> tables_;
};

/// One-shot convenience wrapper: prod_i bases[i]^{exponents[i]} mod
/// ctx.modulus().
Result<BigInt> MultiExp(const std::vector<BigInt>& bases,
                        const std::vector<BigInt>& exponents,
                        const MontgomeryContext& ctx);

}  // namespace ppgnn

#endif  // PPGNN_BIGINT_MULTIEXP_H_
