// Arbitrary-precision signed integers.
//
// The paper's implementation used GMP; this reproduction implements the
// bignum substrate from scratch. Representation is sign-magnitude with
// little-endian 64-bit limbs. Multiplication switches from schoolbook to
// Karatsuba above a threshold; division is Knuth's Algorithm D.
//
// BigInt is a regular value type: copyable, movable, equality-comparable,
// and totally ordered. All arithmetic is exact.

#ifndef PPGNN_BIGINT_BIGINT_H_
#define PPGNN_BIGINT_BIGINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace ppgnn {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// Conversion from native integers is implicit by design: BigInt is a
  /// drop-in numeric type and mixed expressions like `x + 1` abound.
  BigInt(int64_t value);   // NOLINT(runtime/explicit)
  BigInt(uint64_t value);  // NOLINT(runtime/explicit)
  BigInt(int value) : BigInt(static_cast<int64_t>(value)) {}  // NOLINT

  /// Parses a base-10 string with optional leading '-'.
  static Result<BigInt> FromDecimal(const std::string& text);
  /// Parses a base-16 string (no 0x prefix) with optional leading '-'.
  static Result<BigInt> FromHex(const std::string& text);
  /// Builds a non-negative integer from big-endian magnitude bytes.
  static BigInt FromBytes(const std::vector<uint8_t>& bytes);
  /// Uniformly random integer in [0, 2^bits).
  static BigInt Random(int bits, Rng& rng);
  /// Uniformly random integer in [0, bound); bound must be positive.
  static BigInt RandomBelow(const BigInt& bound, Rng& rng);
  /// 2^exponent.
  static BigInt Pow2(int exponent);

  bool IsZero() const { return sign_ == 0; }
  bool IsNegative() const { return sign_ < 0; }
  bool IsOdd() const { return sign_ != 0 && (limbs_[0] & 1) != 0; }
  bool IsOne() const { return sign_ == 1 && limbs_.size() == 1 && limbs_[0] == 1; }

  /// Number of significant bits of |this| (0 for zero).
  int BitLength() const;
  /// Bit i (LSB = 0) of the magnitude.
  bool GetBit(int i) const;

  /// Sign: -1, 0, or +1.
  int sign() const { return sign_; }
  BigInt Abs() const;
  BigInt Negated() const;

  /// Value as uint64_t. Requires 0 <= *this < 2^64.
  Result<uint64_t> ToUint64() const;
  /// Low 64 bits of the magnitude (0 for zero); sign ignored.
  uint64_t Low64() const { return limbs_.empty() ? 0 : limbs_[0]; }

  std::string ToDecimal() const;
  std::string ToHex() const;
  /// Big-endian magnitude bytes, no sign, minimal length ("" for zero).
  std::vector<uint8_t> ToBytes() const;
  /// Big-endian magnitude padded with leading zeros to exactly `width`
  /// bytes. Requires the value to fit.
  Result<std::vector<uint8_t>> ToBytesPadded(size_t width) const;

  // Comparison. Total order over the integers.
  friend bool operator==(const BigInt& a, const BigInt& b);
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  // Arithmetic.
  friend BigInt operator+(const BigInt& a, const BigInt& b);
  friend BigInt operator-(const BigInt& a, const BigInt& b);
  friend BigInt operator*(const BigInt& a, const BigInt& b);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  friend BigInt operator/(const BigInt& a, const BigInt& b);
  /// Remainder with the sign of the dividend (C++ semantics).
  friend BigInt operator%(const BigInt& a, const BigInt& b);
  friend BigInt operator<<(const BigInt& a, int shift);
  friend BigInt operator>>(const BigInt& a, int shift);

  BigInt& operator+=(const BigInt& b) { return *this = *this + b; }
  BigInt& operator-=(const BigInt& b) { return *this = *this - b; }
  BigInt& operator*=(const BigInt& b) { return *this = *this * b; }
  BigInt& operator/=(const BigInt& b) { return *this = *this / b; }
  BigInt& operator%=(const BigInt& b) { return *this = *this % b; }
  BigInt& operator<<=(int s) { return *this = *this << s; }
  BigInt& operator>>=(int s) { return *this = *this >> s; }

  /// Quotient and remainder in one pass (truncated semantics). Division by
  /// zero returns an error.
  static Result<std::pair<BigInt, BigInt>> DivMod(const BigInt& a,
                                                  const BigInt& b);

  /// Non-negative remainder in [0, |m|). Requires m != 0.
  BigInt Mod(const BigInt& m) const;

  /// Number of limbs (testing / instrumentation).
  size_t LimbCount() const { return limbs_.size(); }

  /// Little-endian 64-bit limbs of the magnitude (no trailing zeros).
  /// Exposed for limb-level algorithms (Montgomery arithmetic).
  const std::vector<uint64_t>& Limbs() const { return limbs_; }

  /// Builds a non-negative value from little-endian limbs.
  static BigInt FromLimbs(std::vector<uint64_t> limbs);

 private:
  friend class BigIntTestPeer;

  // --- magnitude helpers (ignore sign) ---
  static std::vector<uint64_t> MagAdd(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint64_t> MagSub(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  static int MagCompare(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MagMul(const std::vector<uint64_t>& a,
                                      const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MagMulSchoolbook(const std::vector<uint64_t>& a,
                                                const std::vector<uint64_t>& b);
  static std::vector<uint64_t> MagMulKaratsuba(const std::vector<uint64_t>& a,
                                               const std::vector<uint64_t>& b);
  // Knuth Algorithm D on magnitudes; b non-zero.
  static void MagDivMod(const std::vector<uint64_t>& a,
                        const std::vector<uint64_t>& b,
                        std::vector<uint64_t>* quotient,
                        std::vector<uint64_t>* remainder);
  static void Trim(std::vector<uint64_t>& limbs);

  void Normalize();

  int sign_ = 0;                 // -1, 0, +1; zero iff limbs_ empty.
  std::vector<uint64_t> limbs_;  // little-endian, no trailing zero limbs.
};

inline bool operator!=(const BigInt& a, const BigInt& b) { return !(a == b); }

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace ppgnn

#endif  // PPGNN_BIGINT_BIGINT_H_
