#include "bigint/bigint.h"

#include <algorithm>
#include <cstring>
#include <ostream>

namespace ppgnn {
namespace {

using u128 = unsigned __int128;

constexpr size_t kKaratsubaThreshold = 24;  // limbs

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// out += a, magnitudes, in place; out sized to fit.
void MagAddInPlace(std::vector<uint64_t>& out, const std::vector<uint64_t>& a,
                   size_t shift_limbs) {
  if (out.size() < a.size() + shift_limbs) out.resize(a.size() + shift_limbs, 0);
  uint64_t carry = 0;
  size_t i = 0;
  for (; i < a.size(); ++i) {
    u128 sum = static_cast<u128>(out[i + shift_limbs]) + a[i] + carry;
    out[i + shift_limbs] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  for (; carry != 0; ++i) {
    if (i + shift_limbs >= out.size()) {
      out.push_back(carry);
      carry = 0;
    } else {
      u128 sum = static_cast<u128>(out[i + shift_limbs]) + carry;
      out[i + shift_limbs] = static_cast<uint64_t>(sum);
      carry = static_cast<uint64_t>(sum >> 64);
    }
  }
}

}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) return;
  sign_ = value < 0 ? -1 : 1;
  // Careful with INT64_MIN: negate in unsigned domain.
  uint64_t mag = value < 0 ? ~static_cast<uint64_t>(value) + 1
                           : static_cast<uint64_t>(value);
  limbs_.push_back(mag);
}

BigInt::BigInt(uint64_t value) {
  if (value == 0) return;
  sign_ = 1;
  limbs_.push_back(value);
}

void BigInt::Trim(std::vector<uint64_t>& limbs) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
}

void BigInt::Normalize() {
  Trim(limbs_);
  if (limbs_.empty()) sign_ = 0;
}

Result<BigInt> BigInt::FromDecimal(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty decimal string");
  size_t pos = 0;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size())
    return Status::InvalidArgument("decimal string has no digits");
  BigInt out;
  // Process 19 digits (max power of 10 < 2^64) at a time.
  constexpr uint64_t kChunkBase = 10000000000000000000ULL;
  constexpr int kChunkDigits = 19;
  size_t n = text.size();
  size_t i = pos;
  while (i < n) {
    size_t take = std::min<size_t>(kChunkDigits, n - i);
    uint64_t chunk = 0;
    uint64_t scale = 1;
    for (size_t j = 0; j < take; ++j) {
      char c = text[i + j];
      if (c < '0' || c > '9')
        return Status::InvalidArgument("invalid decimal digit");
      chunk = chunk * 10 + static_cast<uint64_t>(c - '0');
      scale *= 10;
    }
    if (take == kChunkDigits) scale = kChunkBase;
    out = out * BigInt(scale) + BigInt(chunk);
    i += take;
  }
  if (negative && !out.IsZero()) out.sign_ = -1;
  return out;
}

Result<BigInt> BigInt::FromHex(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("empty hex string");
  size_t pos = 0;
  bool negative = false;
  if (text[0] == '-' || text[0] == '+') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size())
    return Status::InvalidArgument("hex string has no digits");
  BigInt out;
  size_t digits = text.size() - pos;
  out.limbs_.assign((digits + 15) / 16, 0);
  for (size_t i = pos; i < text.size(); ++i) {
    int d = HexDigit(text[i]);
    if (d < 0) return Status::InvalidArgument("invalid hex digit");
    size_t bit = (text.size() - 1 - i) * 4;
    out.limbs_[bit / 64] |= static_cast<uint64_t>(d) << (bit % 64);
  }
  out.sign_ = 1;
  out.Normalize();
  if (negative && !out.IsZero()) out.sign_ = -1;
  return out;
}

BigInt BigInt::FromBytes(const std::vector<uint8_t>& bytes) {
  BigInt out;
  out.limbs_.assign((bytes.size() + 7) / 8, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    size_t bit = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit / 64] |= static_cast<uint64_t>(bytes[i]) << (bit % 64);
  }
  out.sign_ = 1;
  out.Normalize();
  return out;
}

BigInt BigInt::Random(int bits, Rng& rng) {
  BigInt out;
  if (bits <= 0) return out;
  int limbs = (bits + 63) / 64;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = rng.NextUint64();
  int top_bits = bits % 64;
  if (top_bits != 0) out.limbs_.back() &= (~0ULL >> (64 - top_bits));
  out.sign_ = 1;
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, Rng& rng) {
  // Rejection sampling over [0, 2^bits).
  int bits = bound.BitLength();
  while (true) {
    BigInt candidate = Random(bits, rng);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::FromLimbs(std::vector<uint64_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.sign_ = 1;
  out.Normalize();
  return out;
}

BigInt BigInt::Pow2(int exponent) {
  BigInt out;
  out.limbs_.assign(exponent / 64 + 1, 0);
  out.limbs_.back() = 1ULL << (exponent % 64);
  out.sign_ = 1;
  return out;
}

int BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  int top = 64 - __builtin_clzll(limbs_.back());
  return static_cast<int>((limbs_.size() - 1) * 64) + top;
}

bool BigInt::GetBit(int i) const {
  size_t limb = static_cast<size_t>(i) / 64;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 64)) & 1;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

BigInt BigInt::Negated() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

Result<uint64_t> BigInt::ToUint64() const {
  if (sign_ < 0) return Status::OutOfRange("negative value in ToUint64");
  if (limbs_.size() > 1) return Status::OutOfRange("value exceeds 64 bits");
  return limbs_.empty() ? 0ULL : limbs_[0];
}

std::string BigInt::ToDecimal() const {
  if (IsZero()) return "0";
  // Repeated division by 10^19.
  constexpr uint64_t kChunkBase = 10000000000000000000ULL;
  std::vector<uint64_t> mag = limbs_;
  std::vector<uint64_t> chunks;
  while (!mag.empty()) {
    u128 rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      u128 cur = (rem << 64) | mag[i];
      mag[i] = static_cast<uint64_t>(cur / kChunkBase);
      rem = cur % kChunkBase;
    }
    Trim(mag);
    chunks.push_back(static_cast<uint64_t>(rem));
  }
  std::string out;
  if (sign_ < 0) out.push_back('-');
  out += std::to_string(chunks.back());
  for (size_t i = chunks.size() - 1; i-- > 0;) {
    std::string part = std::to_string(chunks[i]);
    out.append(19 - part.size(), '0');
    out += part;
  }
  return out;
}

std::string BigInt::ToHex() const {
  if (IsZero()) return "0";
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  if (sign_ < 0) out.push_back('-');
  bool leading = true;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int nib = 15; nib >= 0; --nib) {
      int d = static_cast<int>((limbs_[i] >> (nib * 4)) & 0xf);
      if (leading && d == 0) continue;
      leading = false;
      out.push_back(kDigits[d]);
    }
  }
  return out;
}

std::vector<uint8_t> BigInt::ToBytes() const {
  if (IsZero()) return {};
  size_t nbytes = static_cast<size_t>((BitLength() + 7) / 8);
  std::vector<uint8_t> out(nbytes);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t bit = (nbytes - 1 - i) * 8;
    out[i] = static_cast<uint8_t>(limbs_[bit / 64] >> (bit % 64));
  }
  return out;
}

Result<std::vector<uint8_t>> BigInt::ToBytesPadded(size_t width) const {
  std::vector<uint8_t> raw = ToBytes();
  if (raw.size() > width)
    return Status::OutOfRange("value does not fit in padded width");
  std::vector<uint8_t> out(width - raw.size(), 0);
  out.insert(out.end(), raw.begin(), raw.end());
  return out;
}

// --- comparison ---

int BigInt::MagCompare(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

bool operator==(const BigInt& a, const BigInt& b) {
  return a.sign_ == b.sign_ && a.limbs_ == b.limbs_;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.sign_ != b.sign_)
    return a.sign_ < b.sign_ ? std::strong_ordering::less
                             : std::strong_ordering::greater;
  int mag = BigInt::MagCompare(a.limbs_, b.limbs_);
  int cmp = a.sign_ >= 0 ? mag : -mag;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

// --- magnitude arithmetic ---

std::vector<uint64_t> BigInt::MagAdd(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint64_t> out(longer.size());
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    u128 sum = static_cast<u128>(longer[i]) + carry;
    if (i < shorter.size()) sum += shorter[i];
    out[i] = static_cast<uint64_t>(sum);
    carry = static_cast<uint64_t>(sum >> 64);
  }
  if (carry) out.push_back(carry);
  return out;
}

std::vector<uint64_t> BigInt::MagSub(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out(a.size());
  uint64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t bi = i < b.size() ? b[i] : 0;
    u128 diff = static_cast<u128>(a[i]) - bi - borrow;
    out[i] = static_cast<uint64_t>(diff);
    borrow = static_cast<uint64_t>((diff >> 64) & 1);
  }
  Trim(out);
  return out;
}

std::vector<uint64_t> BigInt::MagMulSchoolbook(const std::vector<uint64_t>& a,
                                               const std::vector<uint64_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint64_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    if (ai == 0) continue;
    for (size_t j = 0; j < b.size(); ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  Trim(out);
  return out;
}

std::vector<uint64_t> BigInt::MagMulKaratsuba(const std::vector<uint64_t>& a,
                                              const std::vector<uint64_t>& b) {
  if (a.size() < kKaratsubaThreshold || b.size() < kKaratsubaThreshold) {
    return MagMulSchoolbook(a, b);
  }
  size_t half = std::max(a.size(), b.size()) / 2;
  auto lo = [&](const std::vector<uint64_t>& v) {
    std::vector<uint64_t> out(v.begin(), v.begin() + std::min(half, v.size()));
    Trim(out);
    return out;
  };
  auto hi = [&](const std::vector<uint64_t>& v) {
    if (v.size() <= half) return std::vector<uint64_t>{};
    std::vector<uint64_t> out(v.begin() + half, v.end());
    return out;
  };
  std::vector<uint64_t> a0 = lo(a), a1 = hi(a);
  std::vector<uint64_t> b0 = lo(b), b1 = hi(b);

  std::vector<uint64_t> z0 = MagMulKaratsuba(a0, b0);
  std::vector<uint64_t> z2 = MagMulKaratsuba(a1, b1);
  std::vector<uint64_t> sa = MagAdd(a0, a1);
  std::vector<uint64_t> sb = MagAdd(b0, b1);
  std::vector<uint64_t> z1 = MagMulKaratsuba(sa, sb);
  z1 = MagSub(z1, z0);
  z1 = MagSub(z1, z2);

  std::vector<uint64_t> out = z0;
  MagAddInPlace(out, z1, half);
  MagAddInPlace(out, z2, 2 * half);
  Trim(out);
  return out;
}

std::vector<uint64_t> BigInt::MagMul(const std::vector<uint64_t>& a,
                                     const std::vector<uint64_t>& b) {
  return MagMulKaratsuba(a, b);
}

void BigInt::MagDivMod(const std::vector<uint64_t>& a,
                       const std::vector<uint64_t>& b,
                       std::vector<uint64_t>* quotient,
                       std::vector<uint64_t>* remainder) {
  // Fast paths.
  if (MagCompare(a, b) < 0) {
    quotient->clear();
    *remainder = a;
    Trim(*remainder);
    return;
  }
  if (b.size() == 1) {
    uint64_t divisor = b[0];
    quotient->assign(a.size(), 0);
    u128 rem = 0;
    for (size_t i = a.size(); i-- > 0;) {
      u128 cur = (rem << 64) | a[i];
      (*quotient)[i] = static_cast<uint64_t>(cur / divisor);
      rem = cur % divisor;
    }
    Trim(*quotient);
    remainder->clear();
    if (rem != 0) remainder->push_back(static_cast<uint64_t>(rem));
    return;
  }

  // Knuth TAOCP vol. 2, Algorithm D.
  const size_t n = b.size();
  const size_t m = a.size() - n;
  const int shift = __builtin_clzll(b.back());

  // Normalized divisor v and dividend u (u has an extra high limb).
  std::vector<uint64_t> v(n);
  for (size_t i = n; i-- > 0;) {
    v[i] = b[i] << shift;
    if (shift && i > 0) v[i] |= b[i - 1] >> (64 - shift);
  }
  std::vector<uint64_t> u(a.size() + 1, 0);
  for (size_t i = a.size(); i-- > 0;) {
    u[i] = a[i] << shift;
    if (shift && i > 0) u[i] |= a[i - 1] >> (64 - shift);
  }
  if (shift) u[a.size()] = a.back() >> (64 - shift);

  quotient->assign(m + 1, 0);
  const uint64_t vtop = v[n - 1];
  const uint64_t vsecond = v[n - 2];

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q̂ = (u[j+n]·B + u[j+n-1]) / v[n-1].
    u128 numerator = (static_cast<u128>(u[j + n]) << 64) | u[j + n - 1];
    u128 qhat = numerator / vtop;
    u128 rhat = numerator % vtop;
    if (qhat > ~0ULL) {
      qhat = ~0ULL;
      rhat = numerator - qhat * vtop;
    }
    while (rhat <= ~0ULL &&
           qhat * vsecond > ((rhat << 64) | u[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }

    // u[j..j+n] -= q̂ · v.
    uint64_t q64 = static_cast<uint64_t>(qhat);
    u128 borrow = 0;
    u128 carry = 0;
    for (size_t i = 0; i < n; ++i) {
      u128 prod = static_cast<u128>(q64) * v[i] + carry;
      carry = prod >> 64;
      u128 diff = static_cast<u128>(u[j + i]) - static_cast<uint64_t>(prod) -
                  static_cast<uint64_t>(borrow);
      u[j + i] = static_cast<uint64_t>(diff);
      borrow = (diff >> 64) & 1;
    }
    u128 diff = static_cast<u128>(u[j + n]) - carry - borrow;
    u[j + n] = static_cast<uint64_t>(diff);
    bool negative = ((diff >> 64) & 1) != 0;

    if (negative) {
      // q̂ was one too large; add v back.
      --q64;
      u128 carry2 = 0;
      for (size_t i = 0; i < n; ++i) {
        u128 sum = static_cast<u128>(u[j + i]) + v[i] + carry2;
        u[j + i] = static_cast<uint64_t>(sum);
        carry2 = sum >> 64;
      }
      u[j + n] += static_cast<uint64_t>(carry2);
    }
    (*quotient)[j] = q64;
  }

  Trim(*quotient);
  // Denormalize the remainder.
  remainder->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    (*remainder)[i] = u[i] >> shift;
    if (shift && i + 1 < u.size()) (*remainder)[i] |= u[i + 1] << (64 - shift);
  }
  Trim(*remainder);
}

// --- signed arithmetic ---

BigInt operator+(const BigInt& a, const BigInt& b) {
  if (a.sign_ == 0) return b;
  if (b.sign_ == 0) return a;
  BigInt out;
  if (a.sign_ == b.sign_) {
    out.limbs_ = BigInt::MagAdd(a.limbs_, b.limbs_);
    out.sign_ = a.sign_;
  } else {
    int cmp = BigInt::MagCompare(a.limbs_, b.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = BigInt::MagSub(a.limbs_, b.limbs_);
      out.sign_ = a.sign_;
    } else {
      out.limbs_ = BigInt::MagSub(b.limbs_, a.limbs_);
      out.sign_ = b.sign_;
    }
  }
  out.Normalize();
  return out;
}

BigInt operator-(const BigInt& a, const BigInt& b) { return a + b.Negated(); }

BigInt operator*(const BigInt& a, const BigInt& b) {
  if (a.sign_ == 0 || b.sign_ == 0) return BigInt();
  BigInt out;
  out.limbs_ = BigInt::MagMul(a.limbs_, b.limbs_);
  out.sign_ = a.sign_ * b.sign_;
  out.Normalize();
  return out;
}

Result<std::pair<BigInt, BigInt>> BigInt::DivMod(const BigInt& a,
                                                 const BigInt& b) {
  if (b.IsZero()) return Status::InvalidArgument("division by zero");
  BigInt q, r;
  MagDivMod(a.limbs_, b.limbs_, &q.limbs_, &r.limbs_);
  q.sign_ = q.limbs_.empty() ? 0 : a.sign_ * b.sign_;
  r.sign_ = r.limbs_.empty() ? 0 : a.sign_;
  return std::make_pair(std::move(q), std::move(r));
}

BigInt operator/(const BigInt& a, const BigInt& b) {
  auto qr = BigInt::DivMod(a, b);
  // ppgnn-lint: allow(unchecked-result): operator/ has no error channel; division by zero must abort, matching built-in integer semantics
  return qr.value().first;
}

BigInt operator%(const BigInt& a, const BigInt& b) {
  auto qr = BigInt::DivMod(a, b);
  // ppgnn-lint: allow(unchecked-result): operator% has no error channel; division by zero must abort, matching built-in integer semantics
  return qr.value().second;
}

BigInt BigInt::Mod(const BigInt& m) const {
  BigInt r = *this % m;
  if (r.sign_ < 0) r = r + m.Abs();
  return r;
}

BigInt operator<<(const BigInt& a, int shift) {
  if (a.sign_ == 0 || shift == 0) return a;
  if (shift < 0) return a >> (-shift);
  size_t limb_shift = static_cast<size_t>(shift) / 64;
  int bit_shift = shift % 64;
  BigInt out;
  out.sign_ = a.sign_;
  out.limbs_.assign(a.limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < a.limbs_.size(); ++i) {
    out.limbs_[i + limb_shift] |= a.limbs_[i] << bit_shift;
    if (bit_shift)
      out.limbs_[i + limb_shift + 1] |= a.limbs_[i] >> (64 - bit_shift);
  }
  out.Normalize();
  return out;
}

BigInt operator>>(const BigInt& a, int shift) {
  if (a.sign_ == 0 || shift == 0) return a;
  if (shift < 0) return a << (-shift);
  size_t limb_shift = static_cast<size_t>(shift) / 64;
  int bit_shift = shift % 64;
  if (limb_shift >= a.limbs_.size()) return BigInt();
  BigInt out;
  out.sign_ = a.sign_;
  out.limbs_.assign(a.limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    out.limbs_[i] = a.limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < a.limbs_.size())
      out.limbs_[i] |= a.limbs_[i + limb_shift + 1] << (64 - bit_shift);
  }
  out.Normalize();
  return out;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimal();
}

}  // namespace ppgnn
