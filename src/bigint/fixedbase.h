// Fixed-base modular exponentiation (windowed Lim-Lee-style
// precomputation): base^e mod n for ONE long-lived base and many
// exponents, with every squaring moved into a one-time table build.
//
// The exponent is split into w-bit digits e = sum_j c_j * 2^{j*w} and the
// table stores every digit value at every digit position:
//
//   tables[j][c] = base^{c * 2^{j*w}} mod n   (c in [1, 2^w - 1])
//
// so an evaluation is just ceil(bits/w) Montgomery multiplies and ZERO
// squarings — against ~bits squarings plus bits/w multiplies for the
// generic ladder. At the Paillier blinding shape (1024-bit key, ~1088-bit
// exponent over a 2048-bit modulus, w = 5) that is ~218 multiplies in
// place of ~1300, a 5-6x cut, growing to ~9x at level 2 where the seed
// path squared across a 3072-bit modulus. The table build itself is also
// squaring-free: tables[j+1][1] = tables[j][2^w - 1] * tables[j][1].
//
// Memory per engine: ceil(max_exponent_bits/w) * (2^w - 1) entries of
// modulus width — ~1.7 MB for the level-1 blinding base of a 1024-bit
// key at w = 5 (see DESIGN.md section 12 for the width/latency trade-off).
// That only pays off for a base that is fixed across many calls (the key
// regime: blinding bases live as long as the key), so engines are shared
// process-wide through SharedFixedBaseEngine below rather than rebuilt
// per Encryptor.
//
// Results are bit-identical to the generic ladder: exact residue
// arithmetic over the same modulus, every evaluation order yields the
// same canonical representative. Table construction consumes no
// randomness — it is a pure function of (base, modulus, width) — so
// chaos/replay schedules stay deterministic (ppgnn-lint enforces this
// for service-side users of this header).

#ifndef PPGNN_BIGINT_FIXEDBASE_H_
#define PPGNN_BIGINT_FIXEDBASE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/montgomery.h"
#include "common/status.h"

namespace ppgnn {

class FixedBaseEngine {
 public:
  /// Builds the digit tables for `base` modulo `modulus` (odd, >= 3),
  /// sized for exponents up to `max_exponent_bits` bits. `window` is the
  /// digit width in bits; 0 picks a width tuned to the exponent size
  /// (5 for key-sized exponents, 4 below that). The engine owns its
  /// MontgomeryContext — it is the long-lived object here.
  static Result<FixedBaseEngine> Create(const BigInt& base,
                                        const BigInt& modulus,
                                        int max_exponent_bits, int window = 0);

  /// base^exponent mod modulus. exponent >= 0. Exponents wider than
  /// max_exponent_bits() fall back to the generic ladder on the same
  /// context (identical result, no table support). Thread-safe: const,
  /// no shared mutable state.
  Result<BigInt> Pow(const BigInt& exponent) const;

  /// Domain-resident variant: the result stays in the Montgomery domain
  /// for callers that keep accumulating (mirrors
  /// MontgomeryContext::ExpDomain).
  Result<std::vector<uint64_t>> PowDomain(const BigInt& exponent) const;

  /// Digit width in bits the tables were built with.
  int window() const { return window_; }
  /// Largest exponent bit-length the tables cover (>= the requested
  /// max_exponent_bits, rounded up to a whole digit).
  int max_exponent_bits() const { return capacity_bits_; }
  /// Precomputed table entries / resident bytes (the memory side of the
  /// width trade-off; surfaced through ServiceStats).
  size_t table_entries() const;
  size_t table_bytes() const;

  const MontgomeryContext& context() const { return *ctx_; }

  /// Total engines ever constructed in this process. A build costs
  /// ~ceil(bits/w) * 2^w modular multiplies, so hot paths must share
  /// engines (SharedFixedBaseEngine); tests assert on this counter to
  /// keep it that way.
  static uint64_t created_count();

 private:
  FixedBaseEngine() = default;

  std::unique_ptr<MontgomeryContext> ctx_;
  int window_ = 0;
  int capacity_bits_ = 0;
  std::vector<uint64_t> base_mont_;  // for the over-capacity fallback
  // tables_[j][c] = base^{c * 2^{j*window_}} in the Montgomery domain,
  // c in [1, 2^window_ - 1] (slot 0 is unused).
  std::vector<std::vector<std::vector<uint64_t>>> tables_;
};

/// Process-wide engine cache keyed by (base, modulus): the first caller
/// pays the table build, every later Encryptor over the same key reuses
/// it — the DotEngine context-caching idea lifted to process scope,
/// because keys are long-lived and request-scoped objects are not.
/// Returns an engine covering at least `min_exponent_bits` (an existing
/// narrower engine is replaced by a wider rebuild), or null if the
/// modulus does not admit a Montgomery context (even modulus: callers
/// keep their generic-ladder path). `window` = 0 accepts any cached
/// width; nonzero demands that width exactly.
std::shared_ptr<const FixedBaseEngine> SharedFixedBaseEngine(
    const BigInt& base, const BigInt& modulus, int min_exponent_bits,
    int window = 0);

/// Registry observability, surfaced through ServiceStats.
struct FixedBaseRegistryStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t engines = 0;      ///< currently cached
  size_t table_bytes = 0;  ///< summed over cached engines
};
FixedBaseRegistryStats SharedFixedBaseRegistryStats();

}  // namespace ppgnn

#endif  // PPGNN_BIGINT_FIXEDBASE_H_
