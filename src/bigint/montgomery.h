// Montgomery modular arithmetic (CIOS word-by-word reduction).
//
// A MontgomeryContext fixes an ODD modulus n and provides multiplication
// in the Montgomery domain: numbers are represented as a*R mod n with
// R = 2^(64*L), and MontMul(x, y) computes x*y*R^{-1} mod n in a single
// interleaved multiply-reduce pass — no division. This speeds up the
// modular exponentiation underneath every Paillier operation by roughly
// 2-4x over the multiply-then-Knuth-divide ladder (see bench_micro's
// BM_ModExp vs BM_ModExpMontgomery).
//
// ModExp (modular.h) routes odd moduli through this automatically; the
// plain ladder remains for even moduli and as a differential-testing
// reference.

#ifndef PPGNN_BIGINT_MONTGOMERY_H_
#define PPGNN_BIGINT_MONTGOMERY_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "common/status.h"

namespace ppgnn {

class MontgomeryContext {
 public:
  /// Requires an odd modulus >= 3.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  /// a*R mod n. Requires 0 <= a < n.
  std::vector<uint64_t> ToMont(const BigInt& a) const;

  /// Inverse of ToMont.
  BigInt FromMont(const std::vector<uint64_t>& a) const;

  /// Montgomery product: a*b*R^{-1} mod n (both operands in the domain).
  std::vector<uint64_t> MontMul(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) const;

  /// The Montgomery representation of 1 (the ladder's identity).
  std::vector<uint64_t> One() const;

  /// base^exponent mod n via a 4-bit-window Montgomery ladder.
  /// exponent >= 0.
  Result<BigInt> ModExp(const BigInt& base, const BigInt& exponent) const;

  /// Domain-resident exponentiation: `base` is already in the Montgomery
  /// domain and the result stays in the domain. Lets callers convert a
  /// value into the domain once, exponentiate/accumulate repeatedly, and
  /// convert out once. exponent >= 0.
  std::vector<uint64_t> ExpDomain(const std::vector<uint64_t>& base,
                                  const BigInt& exponent) const;

  /// Total number of contexts ever constructed in this process. Creation
  /// re-derives n' and R^2 mod n (an expensive division), so hot paths
  /// must reuse prebuilt contexts; tests and benches assert on this
  /// counter to keep it that way.
  static uint64_t created_count();

  const BigInt& modulus() const { return modulus_; }
  size_t limbs() const { return limbs_; }

 private:
  MontgomeryContext() = default;

  BigInt modulus_;
  std::vector<uint64_t> n_;  // modulus limbs, padded to limbs_
  uint64_t n_prime_ = 0;     // -n^{-1} mod 2^64
  size_t limbs_ = 0;
  std::vector<uint64_t> r2_;  // R^2 mod n (for ToMont)
};

}  // namespace ppgnn

#endif  // PPGNN_BIGINT_MONTGOMERY_H_
