// Probabilistic primality testing (Miller-Rabin with trial-division
// prefilter) and random prime generation for Paillier key material.

#ifndef PPGNN_BIGINT_PRIME_H_
#define PPGNN_BIGINT_PRIME_H_

#include "bigint/bigint.h"
#include "common/random.h"
#include "common/status.h"

namespace ppgnn {

/// Miller-Rabin compositeness test with `rounds` random bases (error
/// probability <= 4^-rounds), after trial division by small primes.
/// Values < 2 are not prime.
bool IsProbablePrime(const BigInt& candidate, Rng& rng, int rounds = 32);

/// Uniformly random probable prime with exactly `bits` bits (top bit set).
/// Requires bits >= 2.
Result<BigInt> GeneratePrime(int bits, Rng& rng, int rounds = 32);

/// Random probable prime p with exactly `bits` bits and p ≡ 3 (mod 4)
/// (useful for Blum-integer style moduli; also guarantees p odd).
Result<BigInt> GeneratePrime3Mod4(int bits, Rng& rng, int rounds = 32);

}  // namespace ppgnn

#endif  // PPGNN_BIGINT_PRIME_H_
