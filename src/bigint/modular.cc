#include "bigint/modular.h"

#include <array>

#include "bigint/montgomery.h"

namespace ppgnn {

BigInt Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

BigInt Lcm(const BigInt& a, const BigInt& b) {
  if (a.IsZero() || b.IsZero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

Result<BigInt> ModInverse(const BigInt& a, const BigInt& m) {
  if (m < BigInt(2)) return Status::InvalidArgument("modulus must be >= 2");
  // Extended Euclid on (a mod m, m).
  BigInt r0 = m;
  BigInt r1 = a.Mod(m);
  BigInt t0 = 0;
  BigInt t1 = 1;
  while (!r1.IsZero()) {
    PPGNN_ASSIGN_OR_RETURN(auto qr, BigInt::DivMod(r0, r1));
    BigInt& q = qr.first;
    BigInt r2 = std::move(qr.second);
    BigInt t2 = t0 - q * t1;
    r0 = std::move(r1);
    r1 = std::move(r2);
    t0 = std::move(t1);
    t1 = std::move(t2);
  }
  if (!r0.IsOne())
    return Status::InvalidArgument("no modular inverse: gcd != 1");
  return t0.Mod(m);
}

BigInt ModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  return (a * b).Mod(m);
}

Result<BigInt> ModExp(const BigInt& base, const BigInt& exponent,
                      const BigInt& m) {
  if (m.IsZero() || m.IsNegative())
    return Status::InvalidArgument("modulus must be positive");
  if (exponent.IsNegative())
    return Status::InvalidArgument("negative exponent in ModExp");
  if (m.IsOne()) return BigInt(0);

  // Odd moduli (every Paillier modulus) go through Montgomery
  // arithmetic; the multiply-and-divide ladder below remains for even
  // moduli and as the differential-testing reference.
  if (m.IsOdd() && m.BitLength() >= 128) {
    PPGNN_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(m));
    return ctx.ModExp(base, exponent);
  }

  BigInt b = base.Mod(m);
  int bits = exponent.BitLength();
  if (bits == 0) return BigInt(1);

  // 4-bit fixed window: precompute b^0..b^15.
  constexpr int kWindow = 4;
  std::array<BigInt, 1 << kWindow> table;
  table[0] = BigInt(1);
  for (size_t i = 1; i < table.size(); ++i) table[i] = ModMul(table[i - 1], b, m);

  BigInt acc(1);
  int top_window = (bits - 1) / kWindow;
  for (int w = top_window; w >= 0; --w) {
    if (w != top_window) {
      for (int s = 0; s < kWindow; ++s) acc = ModMul(acc, acc, m);
    }
    int chunk = 0;
    for (int bit = kWindow - 1; bit >= 0; --bit) {
      chunk = (chunk << 1) | (exponent.GetBit(w * kWindow + bit) ? 1 : 0);
    }
    if (chunk != 0) acc = ModMul(acc, table[chunk], m);
  }
  return acc;
}

Result<BigInt> ModExp(const BigInt& base, const BigInt& exponent,
                      const MontgomeryContext& ctx) {
  return ctx.ModExp(base, exponent);
}

Result<BigInt> CrtCombine(const BigInt& r1, const BigInt& m1, const BigInt& r2,
                          const BigInt& m2) {
  // x = r1 + m1 * ((r2 - r1) * m1^{-1} mod m2).
  PPGNN_ASSIGN_OR_RETURN(BigInt m1_inv, ModInverse(m1, m2));
  BigInt diff = (r2 - r1).Mod(m2);
  BigInt h = ModMul(diff, m1_inv, m2);
  return r1.Mod(m1) + m1 * h;
}

}  // namespace ppgnn
