#include "bigint/fixedbase.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <utility>

namespace ppgnn {

namespace {

// ppgnn: stat_counter(g_created)
std::atomic<uint64_t> g_created{0};

}  // namespace

uint64_t FixedBaseEngine::created_count() {
  return g_created.load(std::memory_order_relaxed);
}

Result<FixedBaseEngine> FixedBaseEngine::Create(const BigInt& base,
                                                const BigInt& modulus,
                                                int max_exponent_bits,
                                                int window) {
  if (max_exponent_bits < 1)
    return Status::InvalidArgument("fixed-base max_exponent_bits must be >= 1");
  if (window == 0) window = max_exponent_bits >= 768 ? 5 : 4;
  if (window < 1 || window > 8)
    return Status::InvalidArgument("fixed-base window must be in [1, 8]");
  PPGNN_ASSIGN_OR_RETURN(MontgomeryContext ctx,
                         MontgomeryContext::Create(modulus));
  FixedBaseEngine engine;
  engine.ctx_ = std::make_unique<MontgomeryContext>(std::move(ctx));
  const BigInt b = base.Mod(modulus);
  if (b.IsZero())
    return Status::InvalidArgument("fixed base is zero modulo the modulus");
  engine.window_ = window;
  const int windows = (max_exponent_bits + window - 1) / window;
  engine.capacity_bits_ = windows * window;
  engine.base_mont_ = engine.ctx_->ToMont(b);

  // Squaring-free build: within a digit position the entries are a
  // running product by cur = base^{2^{j*w}}, and the next position's
  // generator is cur^{2^w} = tables[j][2^w - 1] * cur.
  const int table_size = 1 << window;
  engine.tables_.resize(static_cast<size_t>(windows));
  std::vector<uint64_t> cur = engine.base_mont_;
  for (int j = 0; j < windows; ++j) {
    auto& table = engine.tables_[static_cast<size_t>(j)];
    table.resize(static_cast<size_t>(table_size));
    table[1] = cur;
    for (int c = 2; c < table_size; ++c) {
      table[static_cast<size_t>(c)] =
          engine.ctx_->MontMul(table[static_cast<size_t>(c - 1)], cur);
    }
    if (j + 1 < windows) {
      cur = engine.ctx_->MontMul(table[static_cast<size_t>(table_size - 1)],
                                 cur);
    }
  }
  g_created.fetch_add(1, std::memory_order_relaxed);
  return engine;
}

Result<std::vector<uint64_t>> FixedBaseEngine::PowDomain(
    const BigInt& exponent) const {
  if (exponent.IsNegative())
    return Status::InvalidArgument("negative exponent in fixed-base Pow");
  const int bits = exponent.BitLength();
  if (bits == 0) return ctx_->One();
  if (bits > capacity_bits_) {
    // Wider than the precomputed span: same context, generic ladder —
    // identical residue, just without table support.
    return ctx_->ExpDomain(base_mont_, exponent);
  }
  const size_t top =
      std::min(tables_.size(),
               static_cast<size_t>((bits + window_ - 1) / window_));
  std::vector<uint64_t> acc;
  bool started = false;
  for (size_t j = 0; j < top; ++j) {
    int digit = 0;
    for (int bit = window_ - 1; bit >= 0; --bit) {
      digit = (digit << 1) |
              (exponent.GetBit(static_cast<int>(j) * window_ + bit) ? 1 : 0);
    }
    if (digit == 0) continue;
    acc = started ? ctx_->MontMul(acc, tables_[j][static_cast<size_t>(digit)])
                  : tables_[j][static_cast<size_t>(digit)];
    started = true;
  }
  if (!started) return ctx_->One();
  return acc;
}

Result<BigInt> FixedBaseEngine::Pow(const BigInt& exponent) const {
  PPGNN_ASSIGN_OR_RETURN(std::vector<uint64_t> acc, PowDomain(exponent));
  return ctx_->FromMont(acc);
}

size_t FixedBaseEngine::table_entries() const {
  return tables_.size() * static_cast<size_t>((1 << window_) - 1);
}

size_t FixedBaseEngine::table_bytes() const {
  return table_entries() * ctx_->limbs() * sizeof(uint64_t);
}

namespace {

// Process-wide (base, modulus) -> engine cache. Small and bounded: a
// process touches a handful of keys (each contributes a couple of
// blinding bases per ciphertext level), so a linear scan under one mutex
// is cheaper than hashing multi-thousand-bit integers.
struct RegistryEntry {
  BigInt base;
  BigInt modulus;
  std::shared_ptr<const FixedBaseEngine> engine;
};

constexpr size_t kMaxRegistryEntries = 32;

std::mutex g_registry_mu;
std::vector<RegistryEntry>& Registry() {
  static std::vector<RegistryEntry>* r = new std::vector<RegistryEntry>();
  return *r;
}
// ppgnn: guarded_by(g_registry_hits, g_registry_mu)
uint64_t g_registry_hits = 0;
// ppgnn: guarded_by(g_registry_misses, g_registry_mu)
uint64_t g_registry_misses = 0;
// ppgnn: guarded_by(g_registry_evictions, g_registry_mu)
uint64_t g_registry_evictions = 0;

}  // namespace

std::shared_ptr<const FixedBaseEngine> SharedFixedBaseEngine(
    const BigInt& base, const BigInt& modulus, int min_exponent_bits,
    int window) {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  std::vector<RegistryEntry>& reg = Registry();
  for (auto it = reg.begin(); it != reg.end(); ++it) {
    if (it->base != base || it->modulus != modulus) continue;
    if (it->engine->max_exponent_bits() >= min_exponent_bits &&
        (window == 0 || it->engine->window() == window)) {
      ++g_registry_hits;
      return it->engine;
    }
    // Cached but too narrow (or wrong width): drop it and rebuild below.
    reg.erase(it);
    break;
  }
  ++g_registry_misses;
  Result<FixedBaseEngine> built =
      FixedBaseEngine::Create(base, modulus, min_exponent_bits, window);
  if (!built.ok()) return nullptr;
  if (reg.size() >= kMaxRegistryEntries) {
    reg.erase(reg.begin());
    ++g_registry_evictions;
  }
  auto engine =
      std::make_shared<const FixedBaseEngine>(std::move(built).value());
  reg.push_back(RegistryEntry{base, modulus, engine});
  return engine;
}

FixedBaseRegistryStats SharedFixedBaseRegistryStats() {
  std::lock_guard<std::mutex> lock(g_registry_mu);
  FixedBaseRegistryStats stats;
  stats.hits = g_registry_hits;
  stats.misses = g_registry_misses;
  stats.evictions = g_registry_evictions;
  stats.engines = Registry().size();
  for (const RegistryEntry& e : Registry()) {
    stats.table_bytes += e.engine->table_bytes();
  }
  return stats;
}

}  // namespace ppgnn
