#include "bigint/prime.h"

#include <array>

#include "bigint/modular.h"

namespace ppgnn {
namespace {

// Primes below 1000 for fast trial division.
constexpr std::array<uint32_t, 168> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409, 419, 421, 431, 433,
    439, 443, 449, 457, 461, 463, 467, 479, 487, 491, 499, 503, 509, 521,
    523, 541, 547, 557, 563, 569, 571, 577, 587, 593, 599, 601, 607, 613,
    617, 619, 631, 641, 643, 647, 653, 659, 661, 673, 677, 683, 691, 701,
    709, 719, 727, 733, 739, 743, 751, 757, 761, 769, 773, 787, 797, 809,
    811, 821, 823, 827, 829, 839, 853, 857, 859, 863, 877, 881, 883, 887,
    907, 911, 919, 929, 937, 941, 947, 953, 967, 971, 977, 983, 991, 997};

// Remainder of a BigInt by a small unsigned divisor.
uint64_t ModSmall(const BigInt& v, uint64_t divisor) {
  return (v % BigInt(divisor)).Low64();
}

// One Miller-Rabin round with the given base; returns false if `n` is
// definitely composite, an error if the modular arithmetic itself is
// undefined for `n` (degenerate modulus). n odd, n > 3; n - 1 = d * 2^r
// with d odd.
Result<bool> MillerRabinRound(const BigInt& n, const BigInt& n_minus_1,
                              const BigInt& d, int r, const BigInt& base) {
  PPGNN_ASSIGN_OR_RETURN(BigInt x, ModExp(base, d, n));
  if (x.IsOne() || x == n_minus_1) return true;
  for (int i = 1; i < r; ++i) {
    x = ModMul(x, x, n);
    if (x == n_minus_1) return true;
    if (x.IsOne()) return false;  // nontrivial sqrt of 1
  }
  return false;
}

}  // namespace

bool IsProbablePrime(const BigInt& candidate, Rng& rng, int rounds) {
  if (candidate < BigInt(2)) return false;
  for (uint32_t p : kSmallPrimes) {
    if (candidate == BigInt(static_cast<uint64_t>(p))) return true;
    if (ModSmall(candidate, p) == 0) return false;
  }
  // candidate > 997 and odd from here on.
  BigInt n_minus_1 = candidate - BigInt(1);
  BigInt d = n_minus_1;
  int r = 0;
  while (!d.IsOdd()) {
    d = d >> 1;
    ++r;
  }
  BigInt upper = candidate - BigInt(3);  // bases in [2, n-2]
  for (int round = 0; round < rounds; ++round) {
    BigInt base = BigInt::RandomBelow(upper, rng) + BigInt(2);
    Result<bool> witness = MillerRabinRound(candidate, n_minus_1, d, r, base);
    // A degenerate modulus cannot be proven prime; treat it as composite
    // rather than aborting.
    if (!witness.ok() || !witness.value()) return false;
  }
  return true;
}

Result<BigInt> GeneratePrime(int bits, Rng& rng, int rounds) {
  if (bits < 2) return Status::InvalidArgument("prime must have >= 2 bits");
  while (true) {
    BigInt candidate = BigInt::Random(bits, rng);
    // Force exact bit length and oddness.
    candidate = candidate + BigInt::Pow2(bits - 1) -
                (candidate.GetBit(bits - 1) ? BigInt::Pow2(bits - 1) : BigInt(0));
    if (!candidate.IsOdd()) candidate = candidate + BigInt(1);
    if (candidate.BitLength() != bits) continue;  // odd +1 overflowed width
    if (IsProbablePrime(candidate, rng, rounds)) return candidate;
  }
}

Result<BigInt> GeneratePrime3Mod4(int bits, Rng& rng, int rounds) {
  if (bits < 3) return Status::InvalidArgument("prime must have >= 3 bits");
  while (true) {
    BigInt candidate = BigInt::Random(bits, rng);
    candidate = candidate + BigInt::Pow2(bits - 1) -
                (candidate.GetBit(bits - 1) ? BigInt::Pow2(bits - 1) : BigInt(0));
    // Force low two bits to 11 (i.e., ≡ 3 mod 4).
    if (!candidate.GetBit(0)) candidate = candidate + BigInt(1);
    if (!candidate.GetBit(1)) candidate = candidate + BigInt(2);
    if (candidate.BitLength() != bits) continue;
    if (IsProbablePrime(candidate, rng, rounds)) return candidate;
  }
}

}  // namespace ppgnn
