#include "bigint/montgomery.h"

#include <array>
#include <atomic>

namespace ppgnn {
namespace {

using u128 = unsigned __int128;

// ppgnn: stat_counter(g_contexts_created)
std::atomic<uint64_t> g_contexts_created{0};

// x >= y over fixed-length little-endian limb vectors.
bool GreaterEqual(const std::vector<uint64_t>& x,
                  const std::vector<uint64_t>& y) {
  for (size_t i = x.size(); i-- > 0;) {
    if (x[i] != y[i]) return x[i] > y[i];
  }
  return true;  // equal
}

// x -= y (no underflow by contract).
void SubInPlace(std::vector<uint64_t>& x, const std::vector<uint64_t>& y) {
  uint64_t borrow = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    u128 diff = static_cast<u128>(x[i]) - y[i] - borrow;
    x[i] = static_cast<uint64_t>(diff);
    borrow = static_cast<uint64_t>((diff >> 64) & 1);
  }
}

}  // namespace

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus < BigInt(3) || !modulus.IsOdd()) {
    return Status::InvalidArgument(
        "Montgomery arithmetic needs an odd modulus >= 3");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.limbs_ = modulus.LimbCount();
  ctx.n_ = modulus.Limbs();
  ctx.n_.resize(ctx.limbs_, 0);

  // n' = -n[0]^{-1} mod 2^64 via Newton iteration (x <- x(2 - n0 x)).
  uint64_t n0 = ctx.n_[0];
  uint64_t inv = 1;
  for (int i = 0; i < 6; ++i) {
    inv *= 2 - n0 * inv;
  }
  ctx.n_prime_ = ~inv + 1;

  // R^2 mod n with R = 2^(64 L).
  BigInt r2 = BigInt::Pow2(static_cast<int>(128 * ctx.limbs_)).Mod(modulus);
  ctx.r2_ = r2.Limbs();
  ctx.r2_.resize(ctx.limbs_, 0);
  g_contexts_created.fetch_add(1, std::memory_order_relaxed);
  return ctx;
}

uint64_t MontgomeryContext::created_count() {
  return g_contexts_created.load(std::memory_order_relaxed);
}

std::vector<uint64_t> MontgomeryContext::MontMul(
    const std::vector<uint64_t>& a, const std::vector<uint64_t>& b) const {
  const size_t L = limbs_;
  // CIOS: interleaved multiply and reduce. t has L+2 words.
  std::vector<uint64_t> t(L + 2, 0);
  for (size_t i = 0; i < L; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < L; ++j) {
      u128 cur = static_cast<u128>(ai) * b[j] + t[j] + carry;
      t[j] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    u128 cur = static_cast<u128>(t[L]) + carry;
    t[L] = static_cast<uint64_t>(cur);
    t[L + 1] += static_cast<uint64_t>(cur >> 64);

    // m = t[0] * n' mod 2^64; t = (t + m*n) / 2^64
    const uint64_t m = t[0] * n_prime_;
    cur = static_cast<u128>(m) * n_[0] + t[0];
    carry = static_cast<uint64_t>(cur >> 64);  // low word is zero
    for (size_t j = 1; j < L; ++j) {
      cur = static_cast<u128>(m) * n_[j] + t[j] + carry;
      t[j - 1] = static_cast<uint64_t>(cur);
      carry = static_cast<uint64_t>(cur >> 64);
    }
    cur = static_cast<u128>(t[L]) + carry;
    t[L - 1] = static_cast<uint64_t>(cur);
    cur = static_cast<u128>(t[L + 1]) + static_cast<uint64_t>(cur >> 64);
    t[L] = static_cast<uint64_t>(cur);
    t[L + 1] = static_cast<uint64_t>(cur >> 64);
  }
  std::vector<uint64_t> out(t.begin(), t.begin() + static_cast<long>(L));
  if (t[L] != 0 || GreaterEqual(out, n_)) {
    SubInPlace(out, n_);
  }
  return out;
}

std::vector<uint64_t> MontgomeryContext::ToMont(const BigInt& a) const {
  std::vector<uint64_t> padded = a.Limbs();
  padded.resize(limbs_, 0);
  return MontMul(padded, r2_);
}

BigInt MontgomeryContext::FromMont(const std::vector<uint64_t>& a) const {
  std::vector<uint64_t> one(limbs_, 0);
  one[0] = 1;
  return BigInt::FromLimbs(MontMul(a, one));
}

std::vector<uint64_t> MontgomeryContext::One() const {
  // 1 in the domain is R mod n = ToMont(1).
  return ToMont(BigInt(1));
}

std::vector<uint64_t> MontgomeryContext::ExpDomain(
    const std::vector<uint64_t>& base, const BigInt& exponent) const {
  const int bits = exponent.BitLength();
  if (bits == 0) return One();

  constexpr int kWindow = 4;
  std::array<std::vector<uint64_t>, 1 << kWindow> table;
  table[1] = base;
  for (size_t i = 2; i < table.size(); ++i) {
    table[i] = MontMul(table[i - 1], table[1]);
  }

  std::vector<uint64_t> acc = One();
  const int top_window = (bits - 1) / kWindow;
  for (int w = top_window; w >= 0; --w) {
    if (w != top_window) {
      for (int s = 0; s < kWindow; ++s) acc = MontMul(acc, acc);
    }
    int chunk = 0;
    for (int bit = kWindow - 1; bit >= 0; --bit) {
      chunk = (chunk << 1) | (exponent.GetBit(w * kWindow + bit) ? 1 : 0);
    }
    if (chunk != 0) acc = MontMul(acc, table[chunk]);
  }
  return acc;
}

Result<BigInt> MontgomeryContext::ModExp(const BigInt& base,
                                         const BigInt& exponent) const {
  if (exponent.IsNegative())
    return Status::InvalidArgument("negative exponent in ModExp");
  if (exponent.IsZero()) return BigInt(1).Mod(modulus_);
  return FromMont(ExpDomain(ToMont(base.Mod(modulus_)), exponent));
}

}  // namespace ppgnn
