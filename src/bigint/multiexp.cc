#include "bigint/multiexp.h"

#include <algorithm>

namespace ppgnn {

Result<MultiExpEngine> MultiExpEngine::Create(const MontgomeryContext* ctx,
                                              const std::vector<BigInt>& bases) {
  if (ctx == nullptr)
    return Status::InvalidArgument("MultiExpEngine needs a Montgomery context");
  if (bases.empty())
    return Status::InvalidArgument("MultiExpEngine over an empty base set");
  MultiExpEngine engine;
  engine.ctx_ = ctx;
  engine.tables_.resize(bases.size());
  for (size_t i = 0; i < bases.size(); ++i) {
    auto& table = engine.tables_[i];
    table.resize(kTableSize);
    table[1] = ctx->ToMont(bases[i].Mod(ctx->modulus()));
    for (int c = 2; c < kTableSize; ++c) {
      table[c] = ctx->MontMul(table[c - 1], table[1]);
    }
  }
  return engine;
}

Result<BigInt> MultiExpEngine::Eval(const std::vector<BigInt>& exponents) const {
  if (exponents.size() != tables_.size())
    return Status::InvalidArgument("MultiExp exponent count != base count");
  int bits = 0;
  for (const BigInt& e : exponents) {
    if (e.IsNegative())
      return Status::InvalidArgument("negative exponent in MultiExp");
    bits = std::max(bits, e.BitLength());
  }
  if (bits == 0) return BigInt(1).Mod(ctx_->modulus());

  // Straus: one shared square chain; each base folds its 4-bit window
  // digit into the accumulator from its precomputed table.
  std::vector<uint64_t> acc = ctx_->One();
  const int top_window = (bits - 1) / kWindow;
  for (int w = top_window; w >= 0; --w) {
    if (w != top_window) {
      for (int s = 0; s < kWindow; ++s) acc = ctx_->MontMul(acc, acc);
    }
    for (size_t i = 0; i < tables_.size(); ++i) {
      const BigInt& e = exponents[i];
      int chunk = 0;
      for (int bit = kWindow - 1; bit >= 0; --bit) {
        chunk = (chunk << 1) | (e.GetBit(w * kWindow + bit) ? 1 : 0);
      }
      if (chunk != 0) acc = ctx_->MontMul(acc, tables_[i][chunk]);
    }
  }
  return ctx_->FromMont(acc);
}

Result<BigInt> MultiExp(const std::vector<BigInt>& bases,
                        const std::vector<BigInt>& exponents,
                        const MontgomeryContext& ctx) {
  PPGNN_ASSIGN_OR_RETURN(MultiExpEngine engine,
                         MultiExpEngine::Create(&ctx, bases));
  return engine.Eval(exponents);
}

}  // namespace ppgnn
