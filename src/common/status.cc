#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace ppgnn {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kCryptoError:
      return "CryptoError";
    case StatusCode::kProtocolError:
      return "ProtocolError";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void DieOnBadResultAccess(const Status& status) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}

}  // namespace internal
}  // namespace ppgnn
