#include "common/bytes.h"

#include <cstring>

namespace ppgnn {

void ByteWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void ByteWriter::PutVarint(uint64_t v) {
  while (v >= 0x80) {
    buf_.push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  buf_.push_back(static_cast<uint8_t>(v));
}

void ByteWriter::PutBytes(const std::vector<uint8_t>& bytes) {
  PutVarint(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

Result<uint8_t> ByteReader::GetU8() {
  if (pos_ + 1 > size_) return Status::OutOfRange("ByteReader: u8 past end");
  return data_[pos_++];
}

Result<uint32_t> ByteReader::GetU32() {
  if (pos_ + 4 > size_) return Status::OutOfRange("ByteReader: u32 past end");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> ByteReader::GetU64() {
  if (pos_ + 8 > size_) return Status::OutOfRange("ByteReader: u64 past end");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<uint64_t> ByteReader::GetVarint() {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= size_) return Status::OutOfRange("ByteReader: varint past end");
    if (shift >= 64) return Status::InvalidArgument("ByteReader: varint too long");
    uint8_t byte = data_[pos_++];
    v |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

Result<std::vector<uint8_t>> ByteReader::GetBytes() {
  // `len > size_ - pos_` rather than `pos_ + len > size_`: a hostile
  // varint length near 2^64 would wrap the sum and slip past the bound.
  PPGNN_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  if (len > size_ - pos_) return Status::OutOfRange("ByteReader: bytes past end");
  std::vector<uint8_t> out(data_ + pos_, data_ + pos_ + len);
  pos_ += len;
  return out;
}

Result<uint64_t> ByteReader::SkipBytes() {
  PPGNN_ASSIGN_OR_RETURN(uint64_t len, GetVarint());
  if (len > size_ - pos_) return Status::OutOfRange("ByteReader: bytes past end");
  pos_ += len;
  return len;
}

Result<double> ByteReader::GetDouble() {
  PPGNN_ASSIGN_OR_RETURN(uint64_t bits, GetU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string BytesToHex(const std::vector<uint8_t>& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0xf]);
  }
  return out;
}

}  // namespace ppgnn
