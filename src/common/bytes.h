// Byte-buffer serialization helpers.
//
// Messages exchanged between the simulated parties (users, coordinator,
// LSP) are serialized into ByteBuffers so that the communication cost
// reported by the benchmarks is the true wire size, not an estimate.

#ifndef PPGNN_COMMON_BYTES_H_
#define PPGNN_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppgnn {

/// Growable little-endian byte sink.
class ByteWriter {
 public:
  void PutU8(uint8_t v) { buf_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  /// LEB128 variable-length unsigned integer.
  void PutVarint(uint64_t v);
  /// Length-prefixed raw bytes.
  void PutBytes(const std::vector<uint8_t>& bytes);
  /// IEEE-754 double, as 8 little-endian bytes.
  void PutDouble(double v);

  const std::vector<uint8_t>& data() const { return buf_; }
  std::vector<uint8_t> Release() { return std::move(buf_); }
  size_t size() const { return buf_.size(); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked reader over a byte span; mirrors ByteWriter.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<uint8_t>& data)
      : data_(data.data()), size_(data.size()) {}
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  [[nodiscard]] Result<uint8_t> GetU8();
  [[nodiscard]] Result<uint32_t> GetU32();
  [[nodiscard]] Result<uint64_t> GetU64();
  [[nodiscard]] Result<uint64_t> GetVarint();
  [[nodiscard]] Result<std::vector<uint8_t>> GetBytes();
  /// Advances past one length-prefixed blob without copying it. Returns
  /// the skipped payload length. Lets header-only parsers (admission-time
  /// cost peeking) walk a message without materializing ciphertext bodies.
  [[nodiscard]] Result<uint64_t> SkipBytes();
  [[nodiscard]] Result<double> GetDouble();

  size_t remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Hex string of a byte vector (debugging aid).
std::string BytesToHex(const std::vector<uint8_t>& bytes);

}  // namespace ppgnn

#endif  // PPGNN_COMMON_BYTES_H_
