// Deterministic fault injection for chaos testing.
//
// A *failpoint* is a named hook compiled into a production code path.
// Normally it does nothing and costs a single relaxed atomic load; a test
// (or `ppgnn_cli --fail`) arms it with a policy describing *what* to
// inject (an error Status, a delay, a dropped message, corrupted bytes)
// and *when* (every hit, every Nth hit, after a skip, a bounded number of
// times, or probabilistically from a seeded RNG). All scheduling state is
// deterministic: the same policy and the same sequence of hits produce
// the same injections, so a chaos schedule is reproducible from its seed.
//
// Call-site helpers by injected action:
//   * FailpointCheck(point)     -> Status   (error / delay policies)
//   * FailpointDrop(point)      -> bool     (drop policies)
//   * FailpointCorrupt(point, bytes)        (corrupt-bytes policies)
// A policy whose action does not match the call site's helper is ignored
// there, so one point name can be reused only for the action it supports
// (see the catalog in DESIGN.md §9).
//
// Policy spec grammar (used by ParseFailpointPolicy / --fail):
//   <action>[,key=value]...
//   actions:  error[:internal|overloaded|deadline|malformed|crypto]
//             delay:<milliseconds>
//             drop
//             corrupt[:<nbytes>]
//   keys:     p=<probability in [0,1]>   (default 1)
//             seed=<uint64>              (RNG for p and corruption)
//             skip=<n>   fire only from the (n+1)-th hit on (default 0)
//             every=<n>  consider every nth eligible hit (default 1)
//             times=<n>  stop after n fires; 0 = unlimited (default 0)
// Example: "service.admit=drop,p=0.3,seed=7" injects an admission drop on
// ~30% of submissions, reproducibly.

#ifndef PPGNN_COMMON_FAILPOINT_H_
#define PPGNN_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ppgnn {

enum class FailAction : uint8_t {
  kError = 0,    ///< return an injected Status from the point
  kDelay = 1,    ///< sleep, then continue normally
  kDrop = 2,     ///< the caller discards the message / request
  kCorrupt = 3,  ///< flip bytes in the caller's buffer
};

struct FailpointPolicy {
  FailAction action = FailAction::kError;
  /// Status code injected by kError points.
  StatusCode error_code = StatusCode::kInternal;
  /// Sleep applied by kDelay points.
  double delay_seconds = 0.0;
  /// Bytes flipped by kCorrupt points.
  uint32_t corrupt_bytes = 1;
  /// Chance that an eligible hit fires, drawn from a seeded RNG.
  double probability = 1.0;
  /// Seed for the probability draw and the corruption byte positions.
  uint64_t seed = 0x0ddba11;
  /// The first `skip` hits never fire.
  uint64_t skip = 0;
  /// Of the remaining hits, only every nth is eligible (>= 1).
  uint64_t every = 1;
  /// Stop after this many fires; 0 = unlimited.
  uint64_t max_fires = 0;
};

/// Parses the policy half of a spec ("drop,p=0.5,seed=3").
[[nodiscard]] Result<FailpointPolicy> ParseFailpointPolicy(const std::string& spec);

/// Parses and installs a full "point=policy" spec, replacing any
/// policies already armed on that point.
[[nodiscard]] Status FailpointSetFromSpec(const std::string& spec);

/// Parses and *stacks* a full "point=policy" spec: repeated specs for
/// the same point accumulate (e.g. a delay plus an error on one point),
/// each with its own independent schedule. Used by `ppgnn_cli --fail`
/// so repeated flags compose instead of last-one-wins.
[[nodiscard]] Status FailpointAddFromSpec(const std::string& spec);

/// Installs (or replaces) the policy for a point and resets its counters.
void FailpointSet(const std::string& point, FailpointPolicy policy);

/// Stacks an additional policy on a point, keeping any existing ones.
/// Every armed policy evaluates independently per hit: all fired delays
/// sleep, the first fired error wins, drop/corrupt fire if any matching
/// slot fires.
void FailpointAdd(const std::string& point, FailpointPolicy policy);

/// Removes one point / all points. Disarming restores the zero-cost path.
void FailpointClear(const std::string& point);
void FailpointClearAll();

/// Times the point was traversed / actually fired since FailpointSet.
uint64_t FailpointHits(const std::string& point);
uint64_t FailpointFires(const std::string& point);

namespace failpoint_internal {

/// Number of configured points. The *only* state touched when no
/// failpoint is armed: every hook reduces to one relaxed load of this.
extern std::atomic<int> g_armed;

[[nodiscard]] Status CheckSlow(const char* point);
bool DropSlow(const char* point);
void CorruptSlow(const char* point, std::vector<uint8_t>& bytes);

}  // namespace failpoint_internal

inline bool FailpointsArmed() {
  // Deliberately relaxed: the zero-armed fast path must cost one plain
  // load, and an armed reader re-reads everything under RegistryMu in
  // the Slow path, so no ordering is needed here.
  // ppgnn-lint: allow(atomics-discipline): intentional racy fast-path gate; slow path re-checks under RegistryMu
  return failpoint_internal::g_armed.load(std::memory_order_relaxed) != 0;
}

/// Error/delay hook: returns the injected Status (after sleeping through
/// any injected delay), or OK.
inline Status FailpointCheck(const char* point) {
  if (!FailpointsArmed()) return Status::OK();
  return failpoint_internal::CheckSlow(point);
}

/// Drop hook: true when the caller should behave as if the message or
/// request never arrived.
inline bool FailpointDrop(const char* point) {
  return FailpointsArmed() && failpoint_internal::DropSlow(point);
}

/// Corruption hook: deterministically flips bytes in `bytes` when a
/// corrupt policy fires (no-op on an empty buffer).
inline void FailpointCorrupt(const char* point, std::vector<uint8_t>& bytes) {
  if (FailpointsArmed()) failpoint_internal::CorruptSlow(point, bytes);
}

}  // namespace ppgnn

#endif  // PPGNN_COMMON_FAILPOINT_H_
