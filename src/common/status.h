// Status and Result<T>: exception-free error handling for the ppgnn library.
//
// All fallible public APIs in this project return either a Status (for
// operations without a value) or a Result<T> (an owned value or an error).
// This mirrors the Status/Result idiom used by Arrow and RocksDB.

#ifndef PPGNN_COMMON_STATUS_H_
#define PPGNN_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace ppgnn {

/// Machine-readable error category carried by a Status.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotFound = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kCryptoError = 8,
  kProtocolError = 9,
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
};

/// Returns a stable human-readable name for a StatusCode ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// Success-or-error outcome of an operation. Cheap to copy in the OK case.
/// [[nodiscard]] at class scope: silently dropping a returned Status hides
/// the error path, so every caller must consume (or explicitly void) it.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// A value of type T or an error Status. Exactly one is present.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites terse (`return value;` / `return Status::...;`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the error, or OK if a value is held.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Requires ok(). Accessing the value of an error Result aborts.
  const T& value() const& {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(payload_);
  }
  T&& value() && {
    AbortIfError();
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const;

  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void DieOnBadResultAccess(const Status& status);
}  // namespace internal

template <typename T>
void Result<T>::AbortIfError() const {
  if (!ok()) internal::DieOnBadResultAccess(std::get<Status>(payload_));
}

}  // namespace ppgnn

/// Propagates a non-OK Status from the enclosing function.
#define PPGNN_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::ppgnn::Status ppgnn_status_ = (expr);         \
    if (!ppgnn_status_.ok()) return ppgnn_status_;  \
  } while (false)

#define PPGNN_CONCAT_IMPL(a, b) a##b
#define PPGNN_CONCAT(a, b) PPGNN_CONCAT_IMPL(a, b)

/// Evaluates a Result<T> expression; on error, propagates the Status,
/// otherwise moves the value into `lhs`.
#define PPGNN_ASSIGN_OR_RETURN(lhs, expr)                           \
  auto PPGNN_CONCAT(ppgnn_result_, __LINE__) = (expr);              \
  if (!PPGNN_CONCAT(ppgnn_result_, __LINE__).ok())                  \
    return PPGNN_CONCAT(ppgnn_result_, __LINE__).status();          \
  lhs = std::move(PPGNN_CONCAT(ppgnn_result_, __LINE__)).value()

#endif  // PPGNN_COMMON_STATUS_H_
