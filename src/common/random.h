// Deterministic pseudo-random number generation.
//
// Every randomized component in the library takes an explicit Rng (or a
// seed), so experiments and tests are reproducible bit-for-bit. The core
// generator is xoshiro256**, seeded through SplitMix64 per Blackman &
// Vigna's recommendation.
//
// NOTE ON SECURITY: Rng is NOT a cryptographically secure generator. It is
// used for dummy-location generation, Monte-Carlo sampling, and workload
// synthesis. Paillier key generation additionally mixes OS entropy via
// Rng::OsSeeded() unless a caller pins the seed for reproducibility.

#ifndef PPGNN_COMMON_RANDOM_H_
#define PPGNN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppgnn {

/// xoshiro256** deterministic PRNG.
class Rng {
 public:
  /// Seeds the state deterministically from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Returns an Rng seeded from std::random_device (non-deterministic).
  static Rng OsSeeded();

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Bernoulli trial with success probability p in [0, 1].
  bool NextBernoulli(double p);

  /// Fills `out` with `count` random bytes.
  void FillBytes(uint8_t* out, size_t count);

  /// A fresh, independent generator derived from this one's stream. Useful
  /// for handing child components their own deterministic streams.
  Rng Fork();

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
  // Box-Muller produces variates in pairs; caches the spare.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace ppgnn

#endif  // PPGNN_COMMON_RANDOM_H_
