#include "common/failpoint.h"

#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "common/random.h"

namespace ppgnn {
namespace failpoint_internal {

std::atomic<int> g_armed{0};

namespace {

/// One armed policy slot. A point may carry several (stacked via
/// FailpointAdd), each with its own independent hit/fire schedule and
/// RNG stream.
struct SlotState {
  FailpointPolicy policy;
  // ppgnn: guarded_by(hits, RegistryMu)
  uint64_t hits = 0;
  // ppgnn: guarded_by(fires, RegistryMu)
  uint64_t fires = 0;
  Rng rng{0};
};

struct PointState {
  std::vector<SlotState> slots;
};

std::mutex& RegistryMu() {
  static std::mutex mu;
  return mu;
}

std::unordered_map<std::string, PointState>& Registry() {
  static auto* registry = new std::unordered_map<std::string, PointState>();
  return *registry;
}

/// One evaluated firing. `fire_index` numbers fires per slot (0-based)
/// so corruption draws differ deterministically between fires.
struct Fired {
  FailpointPolicy policy;
  uint64_t fire_index = 0;
};

/// Decides whether one slot fires for this hit. Pure function of
/// (policy, hit count, seeded RNG stream), so schedules replay exactly.
// ppgnn: requires(RegistryMu)
bool EvaluateSlot(SlotState& state, Fired* out) {
  state.hits++;
  if (state.hits <= state.policy.skip) return false;
  const uint64_t eligible = state.hits - state.policy.skip - 1;
  const uint64_t every = state.policy.every == 0 ? 1 : state.policy.every;
  if (eligible % every != 0) return false;
  if (state.policy.max_fires != 0 && state.fires >= state.policy.max_fires)
    return false;
  if (state.policy.probability < 1.0 &&
      state.rng.NextDouble() >= state.policy.probability) {
    return false;
  }
  out->policy = state.policy;
  out->fire_index = state.fires;
  state.fires++;
  return true;
}

/// Counts the hit on every slot of the point and collects the slots
/// that fire, in arming order, under the registry lock.
std::vector<Fired> Evaluate(const char* point) {
  std::vector<Fired> fired;
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(point);
  if (it == Registry().end()) return fired;
  for (SlotState& slot : it->second.slots) {
    Fired f;
    if (EvaluateSlot(slot, &f)) fired.push_back(f);
  }
  return fired;
}

Status InjectedError(const char* point, StatusCode code) {
  std::string msg = std::string("failpoint ") + point + ": injected " +
                    StatusCodeToString(code);
  return Status(code, std::move(msg));
}

}  // namespace

Status CheckSlow(const char* point) {
  const std::vector<Fired> fired = Evaluate(point);
  // Stacked semantics: every fired delay sleeps (a slow *and* failing
  // replica is one point with two policies), then the first fired error
  // wins. Drop/corrupt slots are ignored at a Status call site.
  for (const Fired& f : fired) {
    if (f.policy.action == FailAction::kDelay && f.policy.delay_seconds > 0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(f.policy.delay_seconds));
    }
  }
  for (const Fired& f : fired) {
    if (f.policy.action == FailAction::kError) {
      return InjectedError(point, f.policy.error_code);
    }
  }
  return Status::OK();
}

bool DropSlow(const char* point) {
  for (const Fired& f : Evaluate(point)) {
    if (f.policy.action == FailAction::kDrop) return true;
  }
  return false;
}

void CorruptSlow(const char* point, std::vector<uint8_t>& bytes) {
  for (const Fired& fired : Evaluate(point)) {
    if (fired.policy.action != FailAction::kCorrupt || bytes.empty()) continue;
    // Deterministic per fire: seed mixed with the fire index.
    Rng rng(fired.policy.seed ^ (fired.fire_index * 0x9e3779b97f4a7c15ULL));
    const uint32_t flips = fired.policy.corrupt_bytes == 0
                               ? 1
                               : fired.policy.corrupt_bytes;
    for (uint32_t i = 0; i < flips; ++i) {
      const size_t pos = static_cast<size_t>(rng.NextBelow(bytes.size()));
      bytes[pos] ^= static_cast<uint8_t>(1 + rng.NextBelow(255));
    }
  }
}

}  // namespace failpoint_internal

namespace {

using failpoint_internal::Registry;
using failpoint_internal::RegistryMu;

Result<uint64_t> ParseU64(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("failpoint: empty number");
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9')
      return Status::InvalidArgument("failpoint: bad number '" + text + "'");
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  return value;
}

Result<double> ParseDouble(const std::string& text) {
  if (text.empty()) return Status::InvalidArgument("failpoint: empty number");
  char* end = nullptr;
  double value = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0')
    return Status::InvalidArgument("failpoint: bad number '" + text + "'");
  return value;
}

Result<StatusCode> ParseErrorCode(const std::string& name) {
  if (name == "internal") return StatusCode::kInternal;
  if (name == "overloaded") return StatusCode::kResourceExhausted;
  if (name == "deadline") return StatusCode::kDeadlineExceeded;
  if (name == "malformed") return StatusCode::kInvalidArgument;
  if (name == "crypto") return StatusCode::kCryptoError;
  return Status::InvalidArgument("failpoint: unknown error code '" + name +
                                 "' (want internal|overloaded|deadline|"
                                 "malformed|crypto)");
}

}  // namespace

Result<FailpointPolicy> ParseFailpointPolicy(const std::string& spec) {
  FailpointPolicy policy;
  std::vector<std::string> parts;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    parts.push_back(spec.substr(pos, comma - pos));
    pos = comma + 1;
  }
  if (parts.empty() || parts[0].empty())
    return Status::InvalidArgument("failpoint: empty policy");

  // Leading token: action[:arg].
  const std::string& head = parts[0];
  const size_t colon = head.find(':');
  const std::string action = head.substr(0, colon);
  const std::string arg =
      colon == std::string::npos ? "" : head.substr(colon + 1);
  if (action == "error") {
    policy.action = FailAction::kError;
    if (!arg.empty()) {
      PPGNN_ASSIGN_OR_RETURN(policy.error_code, ParseErrorCode(arg));
    }
  } else if (action == "delay") {
    policy.action = FailAction::kDelay;
    if (arg.empty())
      return Status::InvalidArgument("failpoint: delay needs :<milliseconds>");
    PPGNN_ASSIGN_OR_RETURN(double ms, ParseDouble(arg));
    if (ms < 0) return Status::InvalidArgument("failpoint: negative delay");
    policy.delay_seconds = ms / 1000.0;
  } else if (action == "drop") {
    policy.action = FailAction::kDrop;
    if (!arg.empty())
      return Status::InvalidArgument("failpoint: drop takes no argument");
  } else if (action == "corrupt") {
    policy.action = FailAction::kCorrupt;
    if (!arg.empty()) {
      PPGNN_ASSIGN_OR_RETURN(uint64_t n, ParseU64(arg));
      if (n == 0 || n > 64)
        return Status::InvalidArgument("failpoint: corrupt bytes in [1,64]");
      policy.corrupt_bytes = static_cast<uint32_t>(n);
    }
  } else {
    return Status::InvalidArgument("failpoint: unknown action '" + action +
                                   "' (want error|delay|drop|corrupt)");
  }

  for (size_t i = 1; i < parts.size(); ++i) {
    const std::string& kv = parts[i];
    const size_t eq = kv.find('=');
    if (eq == std::string::npos)
      return Status::InvalidArgument("failpoint: bad modifier '" + kv + "'");
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "p") {
      PPGNN_ASSIGN_OR_RETURN(policy.probability, ParseDouble(value));
      if (policy.probability < 0.0 || policy.probability > 1.0)
        return Status::InvalidArgument("failpoint: p must lie in [0,1]");
    } else if (key == "seed") {
      PPGNN_ASSIGN_OR_RETURN(policy.seed, ParseU64(value));
    } else if (key == "skip") {
      PPGNN_ASSIGN_OR_RETURN(policy.skip, ParseU64(value));
    } else if (key == "every") {
      PPGNN_ASSIGN_OR_RETURN(policy.every, ParseU64(value));
      if (policy.every == 0)
        return Status::InvalidArgument("failpoint: every must be >= 1");
    } else if (key == "times") {
      PPGNN_ASSIGN_OR_RETURN(policy.max_fires, ParseU64(value));
    } else {
      return Status::InvalidArgument("failpoint: unknown modifier '" + key +
                                     "' (want p|seed|skip|every|times)");
    }
  }
  return policy;
}

Status FailpointSetFromSpec(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0)
    return Status::InvalidArgument(
        "failpoint: spec must look like point=policy");
  PPGNN_ASSIGN_OR_RETURN(FailpointPolicy policy,
                         ParseFailpointPolicy(spec.substr(eq + 1)));
  FailpointSet(spec.substr(0, eq), policy);
  return Status::OK();
}

Status FailpointAddFromSpec(const std::string& spec) {
  const size_t eq = spec.find('=');
  if (eq == std::string::npos || eq == 0)
    return Status::InvalidArgument(
        "failpoint: spec must look like point=policy");
  PPGNN_ASSIGN_OR_RETURN(FailpointPolicy policy,
                         ParseFailpointPolicy(spec.substr(eq + 1)));
  FailpointAdd(spec.substr(0, eq), policy);
  return Status::OK();
}

namespace {

failpoint_internal::SlotState MakeSlot(const FailpointPolicy& policy) {
  failpoint_internal::SlotState slot;
  slot.policy = policy;
  slot.rng = Rng(policy.seed);
  return slot;
}

}  // namespace

void FailpointSet(const std::string& point, FailpointPolicy policy) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  failpoint_internal::PointState state;
  state.slots.push_back(MakeSlot(policy));
  Registry()[point] = std::move(state);
  failpoint_internal::g_armed.store(static_cast<int>(Registry().size()),
                                    std::memory_order_release);
}

void FailpointAdd(const std::string& point, FailpointPolicy policy) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry()[point].slots.push_back(MakeSlot(policy));
  failpoint_internal::g_armed.store(static_cast<int>(Registry().size()),
                                    std::memory_order_release);
}

void FailpointClear(const std::string& point) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry().erase(point);
  failpoint_internal::g_armed.store(static_cast<int>(Registry().size()),
                                    std::memory_order_release);
}

void FailpointClearAll() {
  std::lock_guard<std::mutex> lock(RegistryMu());
  Registry().clear();
  failpoint_internal::g_armed.store(0, std::memory_order_release);
}

uint64_t FailpointHits(const std::string& point) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(point);
  // Every traversal hits every slot, so slot 0 carries the hit count.
  return it == Registry().end() || it->second.slots.empty()
             ? 0
             : it->second.slots.front().hits;
}

uint64_t FailpointFires(const std::string& point) {
  std::lock_guard<std::mutex> lock(RegistryMu());
  auto it = Registry().find(point);
  if (it == Registry().end()) return 0;
  uint64_t fires = 0;
  for (const auto& slot : it->second.slots) fires += slot.fires;
  return fires;
}

}  // namespace ppgnn
