#include "common/random.h"

#include <cmath>
#include <random>

namespace ppgnn {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

Rng Rng::OsSeeded() {
  std::random_device rd;
  uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  return Rng(seed);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  while (u1 <= 0.0) u1 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

bool Rng::NextBernoulli(double p) { return NextDouble() < p; }

void Rng::FillBytes(uint8_t* out, size_t count) {
  size_t i = 0;
  while (i + 8 <= count) {
    uint64_t word = NextUint64();
    for (int b = 0; b < 8; ++b) out[i++] = static_cast<uint8_t>(word >> (8 * b));
  }
  if (i < count) {
    uint64_t word = NextUint64();
    for (int b = 0; i < count; ++b) out[i++] = static_cast<uint8_t>(word >> (8 * b));
  }
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace ppgnn
