// Umbrella header for the PPGNN library.
//
// Reproduction of "Privacy Preserving Group Nearest Neighbor Search"
// (Wu, Wang, Zhang, Lin, Chen — EDBT 2018). See README.md for a
// quickstart and DESIGN.md for the system map.

#ifndef PPGNN_PPGNN_H_
#define PPGNN_PPGNN_H_

#include "baselines/apnn.h"     // IWYU pragma: export
#include "baselines/geoind.h"   // IWYU pragma: export
#include "baselines/glp.h"      // IWYU pragma: export
#include "baselines/ippf.h"     // IWYU pragma: export
#include "bigint/bigint.h"      // IWYU pragma: export
#include "bigint/modular.h"     // IWYU pragma: export
#include "bigint/montgomery.h"  // IWYU pragma: export
#include "bigint/prime.h"       // IWYU pragma: export
#include "common/failpoint.h"   // IWYU pragma: export
#include "common/random.h"      // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "core/attack.h"        // IWYU pragma: export
#include "core/candidate.h"     // IWYU pragma: export
#include "core/dummy.h"         // IWYU pragma: export
#include "core/indicator.h"     // IWYU pragma: export
#include "core/params.h"        // IWYU pragma: export
#include "core/partition.h"     // IWYU pragma: export
#include "core/protocol.h"      // IWYU pragma: export
#include "core/sanitize.h"      // IWYU pragma: export
#include "core/selection.h"     // IWYU pragma: export
#include "core/wire.h"          // IWYU pragma: export
#include "crypto/key_io.h"      // IWYU pragma: export
#include "crypto/paillier.h"    // IWYU pragma: export
#include "crypto/poi_codec.h"   // IWYU pragma: export
#include "geo/aggregate.h"      // IWYU pragma: export
#include "geo/distance_oracle.h"  // IWYU pragma: export
#include "geo/point.h"          // IWYU pragma: export
#include "geo/rect.h"           // IWYU pragma: export
#include "net/latency.h"        // IWYU pragma: export
#include "net/transport/chaos_proxy.h"  // IWYU pragma: export
#include "net/transport/fleet.h"  // IWYU pragma: export
#include "net/transport/frame.h"  // IWYU pragma: export
#include "net/transport/socket.h"  // IWYU pragma: export
#include "net/transport/tcp_link.h"  // IWYU pragma: export
#include "net/transport/tcp_server.h"  // IWYU pragma: export
#include "roadnet/dijkstra.h"   // IWYU pragma: export
#include "roadnet/graph.h"      // IWYU pragma: export
#include "roadnet/road_gnn.h"   // IWYU pragma: export
#include "service/admission.h"  // IWYU pragma: export
#include "service/blinding_refiller.h"  // IWYU pragma: export
#include "service/cost_model.h" // IWYU pragma: export
#include "service/lsp_service.h"  // IWYU pragma: export
#include "service/reply_cache.h"  // IWYU pragma: export
#include "service/resilient_client.h"  // IWYU pragma: export
#include "service/shard_coordinator.h"  // IWYU pragma: export
#include "service/workload.h"   // IWYU pragma: export
#include "spatial/dataset.h"    // IWYU pragma: export
#include "spatial/gnn.h"        // IWYU pragma: export
#include "spatial/knn.h"        // IWYU pragma: export
#include "spatial/rtree.h"      // IWYU pragma: export
#include "stats/hypothesis.h"   // IWYU pragma: export
#include "stats/normal.h"       // IWYU pragma: export

#endif  // PPGNN_PPGNN_H_
